package mlcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandMatrix(4, 3, 1, rng)
	b := RandMatrix(4, 5, 1, rng)
	// aᵀ @ b via explicit transpose
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATB(a, b)
	assertClose(t, got, want, 1e-12)

	c := RandMatrix(6, 3, 1, rng)
	d := RandMatrix(5, 3, 1, rng)
	dt := NewMatrix(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			dt.Set(j, i, d.At(i, j))
		}
	}
	want = MatMul(c, dt)
	got = MatMulABT(c, d)
	assertClose(t, got, want, 1e-12)
}

func assertClose(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d vs %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("elem %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestHStackHSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandMatrix(3, 2, 1, rng)
	b := RandMatrix(3, 4, 1, rng)
	s := HStack(a, b)
	if s.Rows != 3 || s.Cols != 6 {
		t.Fatalf("hstack shape %dx%d", s.Rows, s.Cols)
	}
	parts := HSplit(s, 2, 4)
	assertClose(t, parts[0], a, 0)
	assertClose(t, parts[1], b, 0)
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("dot")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("norm")
	}
	if s := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("cos same = %v", s)
	}
	if s := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(s) > 1e-12 {
		t.Fatalf("cos orth = %v", s)
	}
	if s := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); s != 0 {
		t.Fatalf("cos zero = %v", s)
	}
}

// numGrad computes the numeric gradient of loss() w.r.t. x[i].
func numGrad(loss func() float64, x []float64, i int) float64 {
	const h = 1e-6
	orig := x[i]
	x[i] = orig + h
	lp := loss()
	x[i] = orig - h
	lm := loss()
	x[i] = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGradients verifies Backward against numeric differentiation
// for both input and parameter gradients.
func checkLayerGradients(t *testing.T, layer Layer, in *Matrix, tol float64) {
	t.Helper()
	target := RandMatrix(1, 1, 0, rand.New(rand.NewSource(9)))
	_ = target

	// scalar loss = sum of squares of outputs / 2
	loss := func() float64 {
		y := layer.Forward(in, true)
		s := 0.0
		for _, v := range y.Data {
			s += v * v / 2
		}
		return s
	}

	// analytic
	y := layer.Forward(in, true)
	dout := y.Clone() // d(loss)/dy = y
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	din := layer.Backward(dout)

	for i := range in.Data {
		want := numGrad(loss, in.Data, i)
		if math.Abs(din.Data[i]-want) > tol {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, din.Data[i], want)
		}
	}
	for _, p := range layer.Params() {
		for i := range p.W.Data {
			want := numGrad(loss, p.W.Data, i)
			if math.Abs(p.Grad.Data[i]-want) > tol {
				t.Fatalf("param %s grad[%d] = %v, numeric %v", p.Name, i, p.Grad.Data[i], want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkLayerGradients(t, NewDense(4, 3, rng), RandMatrix(5, 4, 1, rng), 1e-4)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkLayerGradients(t, &SigmoidLayer{}, RandMatrix(3, 4, 1, rng), 1e-5)
	checkLayerGradients(t, &TanhLayer{}, RandMatrix(3, 4, 1, rng), 1e-5)
	checkLayerGradients(t, &ReLULayer{}, RandMatrix(3, 4, 1, rng), 1e-5)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// BatchNorm's batch statistics make its Jacobian denser; numeric
	// check still applies because loss() recomputes statistics.
	checkLayerGradients(t, NewBatchNorm(3), RandMatrix(6, 3, 1, rng), 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := NewSequential(NewDense(4, 5, rng), &TanhLayer{}, NewDense(5, 2, rng), &SigmoidLayer{})
	checkLayerGradients(t, model, RandMatrix(3, 4, 1, rng), 1e-4)
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm(4)
	x := RandMatrix(64, 4, 3, rng)
	for i := range x.Data {
		x.Data[i] += 10 // big offset
	}
	y := bn.Forward(x, true)
	for c := 0; c < 4; c++ {
		mean, sq := 0.0, 0.0
		for r := 0; r < y.Rows; r++ {
			mean += y.At(r, c)
		}
		mean /= float64(y.Rows)
		for r := 0; r < y.Rows; r++ {
			d := y.At(r, c) - mean
			sq += d * d
		}
		sq /= float64(y.Rows)
		// variance sits slightly below 1 because of the eps inside the
		// normalizing denominator
		if math.Abs(mean) > 1e-9 || math.Abs(sq-1) > 1e-4 {
			t.Fatalf("col %d: mean %v var %v", c, mean, sq)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm(2)
	for i := 0; i < 200; i++ {
		bn.Forward(RandMatrix(16, 2, 1, rng), true)
	}
	x := RandMatrix(1, 2, 1, rng)
	y1 := bn.Forward(x, false)
	y2 := bn.Forward(x, false)
	assertClose(t, y1, y2, 0) // deterministic at inference
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDropout(0.5, rng)
	x := NewMatrix(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	zeros, kept := 0, 0.0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else {
			kept += v
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout rate off: %d zeros", zeros)
	}
	// inverted dropout keeps expectation ≈ sum(x)
	if kept < 800 || kept > 1200 {
		t.Fatalf("scaling off: kept %v", kept)
	}
	// inference: identity
	y = d.Forward(x, false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("dropout active at inference")
		}
	}
}

func TestBCELoss(t *testing.T) {
	pred := FromSlice(1, 2, []float64{0.9, 0.1})
	target := FromSlice(1, 2, []float64{1, 0})
	loss, grad := BCELoss(pred, target)
	want := -(math.Log(0.9) + math.Log(0.9)) / 2
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
	// numeric gradient
	for i := range pred.Data {
		g := numGrad(func() float64 {
			l, _ := BCELoss(pred, target)
			return l
		}, pred.Data, i)
		if math.Abs(grad.Data[i]-g) > 1e-4 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad.Data[i], g)
		}
	}
}

func TestSGDAndAdamConverge(t *testing.T) {
	// fit y = sigmoid(2x - 1) from samples; both optimizers must reduce loss
	for name, opt := range map[string]Optimizer{
		"sgd":      NewSGD(0.5, 0.9),
		"adam":     NewAdam(0.05),
		"plainSGD": NewSGD(0.5, 0),
	} {
		rng := rand.New(rand.NewSource(10))
		model := NewSequential(NewDense(1, 4, rng), &TanhLayer{}, NewDense(4, 1, rng), &SigmoidLayer{})
		x := NewMatrix(32, 1)
		yt := NewMatrix(32, 1)
		for i := 0; i < 32; i++ {
			v := rng.Float64()*4 - 2
			x.Set(i, 0, v)
			if 2*v-1 > 0 {
				yt.Set(i, 0, 1)
			}
		}
		var first, last float64
		for epoch := 0; epoch < 200; epoch++ {
			pred := model.Forward(x, true)
			loss, grad := BCELoss(pred, yt)
			if epoch == 0 {
				first = loss
			}
			last = loss
			model.Backward(grad)
			opt.Step(model.Params())
		}
		if last > first*0.5 {
			t.Errorf("%s did not converge: %v -> %v", name, first, last)
		}
	}
}

func TestClipGradients(t *testing.T) {
	p := NewParam("w", NewMatrix(1, 3))
	p.Grad.Data[0], p.Grad.Data[1], p.Grad.Data[2] = 3, 4, 0 // norm 5
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	after := math.Sqrt(p.Grad.Data[0]*p.Grad.Data[0] + p.Grad.Data[1]*p.Grad.Data[1])
	if math.Abs(after-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", after)
	}
	// below threshold: untouched
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradients([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip touched small gradient")
	}
}

func TestExportImportParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m1 := NewSequential(NewDense(3, 4, rng), NewDense(4, 2, rng))
	m2 := NewSequential(NewDense(3, 4, rng), NewDense(4, 2, rng))
	data, err := ExportParams(m1.Params())
	if err != nil {
		t.Fatal(err)
	}
	if err := ImportParams(m2.Params(), data); err != nil {
		t.Fatal(err)
	}
	x := RandMatrix(2, 3, 1, rng)
	assertClose(t, m2.Forward(x, false), m1.Forward(x, false), 1e-12)
	// shape mismatch rejected
	m3 := NewSequential(NewDense(3, 5, rng))
	if err := ImportParams(m3.Params(), data); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSigmoidRangeQuick(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotScale(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := GlorotMatrix(100, 100, rng)
	bound := math.Sqrt(6.0 / 200)
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("glorot out of bound: %v", v)
		}
	}
}
