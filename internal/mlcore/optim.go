package mlcore

import (
	"encoding/json"
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients and
// clears the gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float64
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum > 0 {
			v := o.vel[p]
			if v == nil {
				v = make([]float64, len(p.W.Data))
				o.vel[p] = v
			}
			for i, g := range p.Grad.Data {
				v[i] = o.Momentum*v[i] - o.LR*g
				p.W.Data[i] += v[i]
			}
		} else {
			for i, g := range p.Grad.Data {
				p.W.Data[i] -= o.LR * g
			}
		}
		p.Grad.Zero()
	}
}

// Adam is the Adam optimizer [Kingma & Ba 2015].
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam builds an Adam optimizer with standard hyperparameters.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			v = make([]float64, len(p.W.Data))
			o.m[p], o.v[p] = m, v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			p.W.Data[i] -= o.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + o.Eps)
		}
		p.Grad.Zero()
	}
}

// ClipGradients scales all gradients down so their global L2 norm does
// not exceed maxNorm; returns the pre-clip norm. RNN training uses this
// to stay stable.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		s := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}

// BCELoss computes mean binary cross-entropy between predictions in
// (0,1) and targets in {0,1}, and the gradient w.r.t. predictions.
func BCELoss(pred, target *Matrix) (float64, *Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("mlcore: bce shape mismatch")
	}
	const eps = 1e-12
	n := float64(len(pred.Data))
	loss := 0.0
	grad := NewMatrix(pred.Rows, pred.Cols)
	for i, p := range pred.Data {
		t := target.Data[i]
		pc := math.Min(math.Max(p, eps), 1-eps)
		loss += -(t*math.Log(pc) + (1-t)*math.Log(1-pc))
		grad.Data[i] = (pc - t) / (pc * (1 - pc)) / n
	}
	return loss / n, grad
}

// modelSnapshot is the JSON shape of exported weights.
type modelSnapshot struct {
	Params []paramSnapshot `json:"params"`
}

type paramSnapshot struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// ExportParams serializes parameters to JSON — the shape COVIDKG's model
// API releases to downstream users (№11/13 in Figure 1).
func ExportParams(params []*Param) ([]byte, error) {
	snap := modelSnapshot{}
	for _, p := range params {
		snap.Params = append(snap.Params, paramSnapshot{
			Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols, Data: p.W.Data,
		})
	}
	return json.Marshal(snap)
}

// ImportParams loads serialized weights into parameters, matched by
// position; shapes must agree.
func ImportParams(params []*Param, data []byte) error {
	var snap modelSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("mlcore: import: %w", err)
	}
	if len(snap.Params) != len(params) {
		return fmt.Errorf("mlcore: import: have %d params, snapshot has %d", len(params), len(snap.Params))
	}
	for i, ps := range snap.Params {
		p := params[i]
		if ps.Rows != p.W.Rows || ps.Cols != p.W.Cols {
			return fmt.Errorf("mlcore: import: param %d shape %dx%d != %dx%d",
				i, ps.Rows, ps.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, ps.Data)
	}
	return nil
}
