package mlcore

import (
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *Matrix
	Grad *Matrix
}

// NewParam wraps a weight matrix as a parameter.
func NewParam(name string, w *Matrix) *Param {
	return &Param{Name: name, W: w, Grad: NewMatrix(w.Rows, w.Cols)}
}

// Layer is a differentiable module. Forward caches whatever Backward
// needs; Backward consumes the output gradient and returns the input
// gradient, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *Matrix, train bool) *Matrix
	Backward(dout *Matrix) *Matrix
	Params() []*Param
}

// ----------------------------------------------------------------- Dense

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	W, B  *Param
	lastX *Matrix
}

// NewDense creates a Glorot-initialized dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		W: NewParam("W", GlorotMatrix(in, out, rng)),
		B: NewParam("b", NewMatrix(1, out)),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *Matrix, _ bool) *Matrix {
	d.lastX = x
	y := MatMul(x, d.W.W)
	AddRowVec(y, d.B.W)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *Matrix) *Matrix {
	AddInPlace(d.W.Grad, MatMulATB(d.lastX, dout))
	for r := 0; r < dout.Rows; r++ {
		row := dout.Row(r)
		for c, v := range row {
			d.B.Grad.Data[c] += v
		}
	}
	return MatMulABT(dout, d.W.W)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ------------------------------------------------------------ Activations

// SigmoidLayer applies the logistic function element-wise.
type SigmoidLayer struct{ lastY *Matrix }

// Forward implements Layer.
func (s *SigmoidLayer) Forward(x *Matrix, _ bool) *Matrix {
	s.lastY = x.Apply(Sigmoid)
	return s.lastY
}

// Backward implements Layer.
func (s *SigmoidLayer) Backward(dout *Matrix) *Matrix {
	out := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := s.lastY.Data[i]
		out.Data[i] = v * y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *SigmoidLayer) Params() []*Param { return nil }

// TanhLayer applies tanh element-wise.
type TanhLayer struct{ lastY *Matrix }

// Forward implements Layer.
func (t *TanhLayer) Forward(x *Matrix, _ bool) *Matrix {
	t.lastY = x.Apply(math.Tanh)
	return t.lastY
}

// Backward implements Layer.
func (t *TanhLayer) Backward(dout *Matrix) *Matrix {
	out := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := t.lastY.Data[i]
		out.Data[i] = v * (1 - y*y)
	}
	return out
}

// Params implements Layer.
func (t *TanhLayer) Params() []*Param { return nil }

// ReLULayer applies max(0, x) element-wise.
type ReLULayer struct{ lastX *Matrix }

// Forward implements Layer.
func (r *ReLULayer) Forward(x *Matrix, _ bool) *Matrix {
	r.lastX = x
	return x.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Backward implements Layer.
func (r *ReLULayer) Backward(dout *Matrix) *Matrix {
	out := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if r.lastX.Data[i] > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLULayer) Params() []*Param { return nil }

// -------------------------------------------------------------- BatchNorm

// BatchNorm normalizes each feature over the batch, with learned scale
// (gamma) and shift (beta), tracking running statistics for inference.
type BatchNorm struct {
	Gamma, Beta *Param
	// running statistics used at inference
	RunMean, RunVar []float64
	Momentum, Eps   float64

	lastXhat *Matrix
	lastStd  []float64
}

// NewBatchNorm creates a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	g := NewMatrix(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	bn := &BatchNorm{
		Gamma:    NewParam("gamma", g),
		Beta:     NewParam("beta", NewMatrix(1, dim)),
		RunMean:  make([]float64, dim),
		RunVar:   make([]float64, dim),
		Momentum: 0.9,
		Eps:      1e-5,
	}
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	dim := x.Cols
	out := NewMatrix(x.Rows, x.Cols)
	if !train || x.Rows == 1 {
		// inference path (also used for single-row batches, whose batch
		// variance is degenerate)
		for r := 0; r < x.Rows; r++ {
			for c := 0; c < dim; c++ {
				xh := (x.At(r, c) - b.RunMean[c]) / math.Sqrt(b.RunVar[c]+b.Eps)
				out.Set(r, c, xh*b.Gamma.W.Data[c]+b.Beta.W.Data[c])
			}
		}
		b.lastXhat = nil
		return out
	}
	mean := make([]float64, dim)
	for r := 0; r < x.Rows; r++ {
		for c, v := range x.Row(r) {
			mean[c] += v
		}
	}
	for c := range mean {
		mean[c] /= float64(x.Rows)
	}
	variance := make([]float64, dim)
	for r := 0; r < x.Rows; r++ {
		for c, v := range x.Row(r) {
			d := v - mean[c]
			variance[c] += d * d
		}
	}
	for c := range variance {
		variance[c] /= float64(x.Rows)
	}
	b.lastStd = make([]float64, dim)
	for c := range variance {
		b.lastStd[c] = math.Sqrt(variance[c] + b.Eps)
	}
	b.lastXhat = NewMatrix(x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		for c, v := range x.Row(r) {
			xh := (v - mean[c]) / b.lastStd[c]
			b.lastXhat.Set(r, c, xh)
			out.Set(r, c, xh*b.Gamma.W.Data[c]+b.Beta.W.Data[c])
		}
	}
	for c := range mean {
		b.RunMean[c] = b.Momentum*b.RunMean[c] + (1-b.Momentum)*mean[c]
		b.RunVar[c] = b.Momentum*b.RunVar[c] + (1-b.Momentum)*variance[c]
	}
	return out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(dout *Matrix) *Matrix {
	if b.lastXhat == nil {
		// inference-mode backward: treat as a per-feature affine map
		out := NewMatrix(dout.Rows, dout.Cols)
		for r := 0; r < dout.Rows; r++ {
			for c, v := range dout.Row(r) {
				out.Set(r, c, v*b.Gamma.W.Data[c]/math.Sqrt(b.RunVar[c]+b.Eps))
			}
		}
		return out
	}
	n := float64(dout.Rows)
	dim := dout.Cols
	dgamma := make([]float64, dim)
	dbeta := make([]float64, dim)
	for r := 0; r < dout.Rows; r++ {
		for c, v := range dout.Row(r) {
			dgamma[c] += v * b.lastXhat.At(r, c)
			dbeta[c] += v
		}
	}
	for c := 0; c < dim; c++ {
		b.Gamma.Grad.Data[c] += dgamma[c]
		b.Beta.Grad.Data[c] += dbeta[c]
	}
	out := NewMatrix(dout.Rows, dout.Cols)
	for c := 0; c < dim; c++ {
		sumD := 0.0
		sumDX := 0.0
		for r := 0; r < dout.Rows; r++ {
			d := dout.At(r, c) * b.Gamma.W.Data[c]
			sumD += d
			sumDX += d * b.lastXhat.At(r, c)
		}
		for r := 0; r < dout.Rows; r++ {
			d := dout.At(r, c) * b.Gamma.W.Data[c]
			out.Set(r, c, (d-sumD/n-b.lastXhat.At(r, c)*sumDX/n)/b.lastStd[c])
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// ---------------------------------------------------------------- Dropout

// Dropout zeroes activations with probability P during training, scaling
// survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *Matrix, train bool) *Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	d.mask = make([]float64, len(x.Data))
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
			out.Data[i] = v / keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *Matrix) *Matrix {
	if d.mask == nil {
		return dout
	}
	out := NewMatrix(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		out.Data[i] = v * d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// ------------------------------------------------------------- Sequential

// Sequential chains layers.
type Sequential struct{ Layers []Layer }

// NewSequential builds a layer chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *Matrix, train bool) *Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dout *Matrix) *Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
