package cord19

import (
	"fmt"
	"strings"
)

// LabeledTable is a table with per-row ground-truth metadata labels, the
// training/eval unit for the §3 classifiers. For vertical tables the
// grid is stored transposed (the header column becomes row 0), matching
// how the paper's models consume "vertical metadata": the classifiers
// always see tuples, and orientation is carried as context.
type LabeledTable struct {
	Rows        [][]string
	Meta        []bool // Meta[i] == row i is metadata
	Orientation string // "horizontal" or "vertical"
	Domain      string // "medical" (CORD-19-like) or "web" (WDC-like)
}

// NumMeta counts metadata rows.
func (t *LabeledTable) NumMeta() int {
	n := 0
	for _, m := range t.Meta {
		if m {
			n++
		}
	}
	return n
}

// medAttributes are header cells for medical tables.
var medAttributes = []string{
	"Age (years)", "Sex", "BMI", "Fever", "Cough", "Dose", "Vaccine",
	"N", "Mortality", "P-value", "Hazard ratio", "Days to onset",
	"Viral load", "ICU admission", "Oxygen saturation", "Comorbidity",
	"Antibody titer", "Symptom duration", "Hospital stay", "Severity",
}

// medGroups are section labels for grouped tables ("Male", "Severe", ...).
var medGroups = []string{
	"All patients", "Severe cases", "Mild cases", "Vaccinated",
	"Unvaccinated", "ICU cohort", "Outpatients", "Control group",
}

// webAttributes are header cells for WDC-style web tables.
var webAttributes = []string{
	"Name", "Price", "Rating", "Country", "Population", "Area", "Year",
	"Team", "Points", "Rank", "Model", "Weight", "Capacity", "Distance",
	"Category", "Brand", "Release date", "Score", "Length", "Height",
}

// webValues are text-typed values for web-table data rows.
var webValues = []string{
	"Falcon", "Atlas", "Vertex", "Nimbus", "Orion", "Pioneer", "Summit",
	"Brazil", "Japan", "Canada", "Norway", "Kenya", "Chile", "Poland",
	"Tigers", "Hawks", "Wolves", "Comets", "Rapids", "Storm",
}

// dataCell fabricates a plausible numeric-ish data cell.
func (g *Generator) dataCell() string {
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(500))
	case 1:
		return fmt.Sprintf("%.1f", g.rng.Float64()*100)
	case 2:
		return fmt.Sprintf("%.1f%%", g.rng.Float64()*100)
	case 3:
		lo := g.rng.Intn(50)
		return fmt.Sprintf("%d-%d", lo, lo+1+g.rng.Intn(50))
	case 4:
		return fmt.Sprintf("%d mg", 5+g.rng.Intn(500))
	case 5:
		return fmt.Sprintf("%.2f", g.rng.Float64())
	case 6:
		return fmt.Sprintf("<%.2f", g.rng.Float64())
	default:
		return fmt.Sprintf("%d days", 1+g.rng.Intn(30))
	}
}

// textCell fabricates a text-typed data cell (name-like). A fraction of
// values reuse attribute vocabulary ("Severity", "Rank" as categorical
// values), because real tables do — this lexical overlap between headers
// and values is a major source of classifier error (§3.3).
func (g *Generator) textCell(domain string) string {
	if g.rng.Float64() < 0.15 {
		return g.headerCell(domain)
	}
	if domain == "medical" {
		return g.pick(Vaccines)
	}
	return g.pick(webValues)
}

// headerCell picks an attribute label for the domain.
func (g *Generator) headerCell(domain string) string {
	if domain == "medical" {
		return g.pick(medAttributes)
	}
	return g.pick(webAttributes)
}

// headerCellNoisy returns a header cell that is sometimes
// numeric-flavoured ("2020", "Dose 1", "Week 2") — real tables label
// columns with years and ordinals, which is exactly what makes metadata
// classification non-trivial (§3.3's 89–96 % rather than 100 %).
func (g *Generator) headerCellNoisy(domain string) string {
	if g.rng.Float64() < 0.25 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", 2019+g.rng.Intn(4))
		case 1:
			return fmt.Sprintf("Dose %d", 1+g.rng.Intn(3))
		case 2:
			return fmt.Sprintf("Week %d", 1+g.rng.Intn(12))
		default:
			return fmt.Sprintf("Q%d %d", 1+g.rng.Intn(4), 2020+g.rng.Intn(3))
		}
	}
	return g.headerCell(domain)
}

// horizontalTable builds a table whose metadata is one (sometimes two)
// top rows, with a small chance of a mid-table section-header row —
// the hard case the positional features exist for.
func (g *Generator) horizontalTable(domain string) *LabeledTable {
	cols := 3 + g.rng.Intn(5)
	dataRows := 3 + g.rng.Intn(10)
	t := &LabeledTable{Orientation: "horizontal", Domain: domain}

	// header row(s)
	header := make([]string, cols)
	used := map[string]bool{}
	for c := range header {
		h := g.headerCellNoisy(domain)
		for used[h] {
			h = g.headerCellNoisy(domain)
		}
		used[h] = true
		header[c] = h
	}
	t.Rows = append(t.Rows, header)
	t.Meta = append(t.Meta, true)
	if g.rng.Float64() < 0.2 {
		// a units sub-header row, also metadata
		units := make([]string, cols)
		unitNames := []string{"(n)", "(%)", "(mg)", "(days)", "(years)", "(ml)"}
		for c := range units {
			units[c] = unitNames[g.rng.Intn(len(unitNames))]
		}
		t.Rows = append(t.Rows, units)
		t.Meta = append(t.Meta, true)
	}

	sectionAt := -1
	if g.rng.Float64() < 0.25 && dataRows > 4 {
		sectionAt = 2 + g.rng.Intn(dataRows-3)
	}
	for r := 0; r < dataRows; r++ {
		if r == sectionAt {
			// a mid-table section header spanning the row
			sec := make([]string, cols)
			sec[0] = g.pick(medGroups)
			t.Rows = append(t.Rows, sec)
			t.Meta = append(t.Meta, true)
		}
		row := make([]string, cols)
		if g.rng.Float64() < 0.15 {
			// an all-text data row (categorical values only) — looks
			// like a header to a naive classifier
			for c := range row {
				row[c] = g.textCell(domain)
			}
		} else {
			for c := range row {
				if c == 0 && g.rng.Float64() < 0.5 {
					row[c] = g.textCell(domain)
				} else {
					row[c] = g.dataCell()
				}
			}
		}
		t.Rows = append(t.Rows, row)
		t.Meta = append(t.Meta, false)
	}
	return t
}

// verticalTable builds a table whose metadata is the leading column,
// stored transposed so the header column appears as row 0.
func (g *Generator) verticalTable(domain string) *LabeledTable {
	attrs := 3 + g.rng.Intn(6)   // becomes column count after transpose
	records := 2 + g.rng.Intn(5) // becomes data row count
	t := &LabeledTable{Orientation: "vertical", Domain: domain}

	header := make([]string, attrs)
	used := map[string]bool{}
	for c := range header {
		h := g.headerCellNoisy(domain)
		for used[h] {
			h = g.headerCellNoisy(domain)
		}
		used[h] = true
		header[c] = h
	}
	t.Rows = append(t.Rows, header)
	t.Meta = append(t.Meta, true)
	for r := 0; r < records; r++ {
		row := make([]string, attrs)
		if g.rng.Float64() < 0.15 {
			for c := range row {
				row[c] = g.textCell(domain)
			}
		} else {
			for c := range row {
				if c == 0 {
					row[c] = g.textCell(domain)
				} else {
					row[c] = g.dataCell()
				}
			}
		}
		t.Rows = append(t.Rows, row)
		t.Meta = append(t.Meta, false)
	}
	return t
}

// headerlessFragment builds a continuation fragment: a table whose
// header was lost when the original was split across pages — every row
// is data. These make row position alone an unreliable metadata signal,
// which is why the paper's numbers sit at 89–96 % rather than 100 %.
func (g *Generator) headerlessFragment(domain string) *LabeledTable {
	base := g.horizontalTable(domain)
	t := &LabeledTable{Orientation: base.Orientation, Domain: domain}
	for i, row := range base.Rows {
		if base.Meta[i] {
			continue
		}
		t.Rows = append(t.Rows, row)
		t.Meta = append(t.Meta, false)
	}
	if len(t.Rows) == 0 {
		// degenerate; keep one data row
		t.Rows = append(t.Rows, base.Rows[len(base.Rows)-1])
		t.Meta = append(t.Meta, false)
	}
	return t
}

// LabeledTables generates n labeled tables with a horizontal/vertical and
// medical/web mix, including headerless continuation fragments. The
// medical fraction plays the role of CORD-19; the rest stands in for WDC
// pre-training data.
func (g *Generator) LabeledTables(n int, medicalFrac float64) []*LabeledTable {
	out := make([]*LabeledTable, n)
	for i := range out {
		domain := "web"
		if g.rng.Float64() < medicalFrac {
			domain = "medical"
		}
		switch {
		case g.rng.Float64() < 0.18:
			out[i] = g.headerlessFragment(domain)
		case g.rng.Float64() < 0.5:
			out[i] = g.horizontalTable(domain)
		default:
			out[i] = g.verticalTable(domain)
		}
	}
	return out
}

// WDCTables generates n web-domain labeled tables (the WDC substitute).
func (g *Generator) WDCTables(n int) []*LabeledTable {
	out := make([]*LabeledTable, n)
	for i := range out {
		if g.rng.Float64() < 0.5 {
			out[i] = g.horizontalTable("web")
		} else {
			out[i] = g.verticalTable("web")
		}
	}
	return out
}

// Table generates one PubTable for a publication in the given topic,
// rendering ground truth into HTML exactly as the corpus would carry it.
func (g *Generator) Table(t Topic) *PubTable {
	lt := g.horizontalTable("medical")
	var headerRows []int
	meta := map[int]bool{}
	for i, m := range lt.Meta {
		if m {
			headerRows = append(headerRows, i)
			meta[i] = true
		}
	}
	term := g.pick(t.Terms)
	caption := fmt.Sprintf("Table %d: %s by %s",
		1+g.rng.Intn(5), strings.ToUpper(term[:1])+term[1:], g.pick(backgroundTerms))
	return &PubTable{
		HTML:        RenderHTMLTable(caption, lt.Rows, headerRows),
		Caption:     caption,
		Rows:        lt.Rows,
		MetaRows:    meta,
		Orientation: lt.Orientation,
	}
}
