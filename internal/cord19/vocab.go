// Package cord19 generates a synthetic COVID-19 research corpus that
// stands in for the CORD-19 dataset [Wang et al. 2020] the paper builds
// on, plus WDC-style web tables [Lehmberg et al. 2016] used to pre-train
// the classifiers. The real corpora are unavailable offline; the
// generator reproduces the *statistical shape* the COVIDKG pipelines
// depend on — topical clusters, field structure (title/abstract/body/
// tables/captions), horizontal and vertical table metadata, numeric cell
// content — with fully deterministic seeded output so every experiment
// is reproducible.
package cord19

// Topic is a ground-truth topical cluster a synthetic publication is
// drawn from. The clusters mirror the prominent COVID-19 topics the
// paper's KG organizes (№5 in Figure 1).
type Topic struct {
	Name  string
	Terms []string
}

// Topics is the closed set of topical clusters the generator samples.
var Topics = []Topic{
	{
		Name: "vaccines",
		Terms: []string{
			"vaccine", "vaccination", "immunization", "mRNA", "booster",
			"dose", "efficacy", "antibody", "immunity", "adjuvant",
			"seroconversion", "immunogenicity", "breakthrough",
		},
	},
	{
		Name: "transmission",
		Terms: []string{
			"transmission", "aerosol", "droplet", "airborne", "contact",
			"masks", "distancing", "ventilation", "superspreading",
			"exposure", "quarantine", "contagion", "fomite",
		},
	},
	{
		Name: "treatment",
		Terms: []string{
			"treatment", "remdesivir", "dexamethasone", "antiviral",
			"therapy", "ventilators", "oxygen", "intubation", "plasma",
			"monoclonal", "corticosteroid", "tocilizumab", "dosage",
		},
	},
	{
		Name: "symptoms",
		Terms: []string{
			"symptoms", "fever", "cough", "fatigue", "anosmia",
			"dyspnea", "headache", "myalgia", "pneumonia", "hypoxia",
			"chills", "nausea", "congestion",
		},
	},
	{
		Name: "diagnostics",
		Terms: []string{
			"diagnosis", "PCR", "antigen", "testing", "sensitivity",
			"specificity", "swab", "serology", "screening", "assay",
			"biomarker", "radiography", "detection",
		},
	},
	{
		Name: "epidemiology",
		Terms: []string{
			"epidemiology", "incidence", "prevalence", "mortality",
			"reproduction", "outbreak", "surveillance", "cohort",
			"lockdown", "wave", "hospitalization", "comorbidity",
			"seroprevalence",
		},
	},
	{
		Name: "genomics",
		Terms: []string{
			"genome", "variant", "mutation", "spike", "protein",
			"sequencing", "lineage", "phylogenetic", "receptor",
			"glycoprotein", "nucleotide", "strain", "recombination",
		},
	},
	{
		Name: "mental-health",
		Terms: []string{
			"anxiety", "depression", "stress", "isolation", "wellbeing",
			"psychological", "insomnia", "burnout", "resilience",
			"loneliness", "telehealth", "counseling", "coping",
		},
	},
}

// TopicNames returns the cluster names in declaration order.
func TopicNames() []string {
	out := make([]string, len(Topics))
	for i, t := range Topics {
		out[i] = t.Name
	}
	return out
}

// backgroundTerms pads sentences with domain-neutral research language.
var backgroundTerms = []string{
	"study", "patients", "analysis", "results", "clinical", "data",
	"hospital", "participants", "risk", "period", "baseline", "outcome",
	"group", "model", "rate", "sample", "population", "effect", "care",
	"infection", "disease", "severity", "response", "protocol", "trial",
	"evidence", "follow-up", "observational", "retrospective", "interval",
}

// Vaccines are the vaccine names used in side-effect tables; NovoVac is
// the deliberately unseen vaccine §4.2 uses to exercise embedding-driven
// KG fusion.
var Vaccines = []string{
	"Pfizer-BioNTech", "Moderna", "AstraZeneca", "Janssen", "Novavax",
	"Sinovac", "Sputnik-V",
}

// UnseenVaccine is excluded from generated corpora so fusion tests can
// present it as a genuinely novel term.
const UnseenVaccine = "NovoVac"

// SideEffects are side-effect terms for meta-profile tables (Figure 6).
var SideEffects = []string{
	"injection-site pain", "fatigue", "headache", "fever", "chills",
	"myalgia", "nausea", "arthralgia", "lymphadenopathy", "rash",
	"dizziness", "swelling",
}

// Journals are synthetic venue names.
var Journals = []string{
	"Journal of Medical Virology", "The Lancet Infectious Diseases",
	"Clinical Microbiology Review", "Nature Medicine Reports",
	"Vaccine Research Quarterly", "Epidemiology and Public Health",
	"Respiratory Medicine Journal", "International Journal of Immunology",
}

// firstNames and lastNames build author lists.
var firstNames = []string{
	"Anna", "Wei", "Carlos", "Fatima", "John", "Priya", "Elena", "Ahmed",
	"Sofia", "Kenji", "Maria", "David", "Amara", "Lucas", "Ingrid", "Omar",
}

var lastNames = []string{
	"Smith", "Chen", "Garcia", "Khan", "Johnson", "Patel", "Rossi",
	"Hassan", "Silva", "Tanaka", "Lopez", "Brown", "Okafor", "Müller",
	"Novak", "Kim",
}

// measurementPhrases inject numeric content so the §3.4 pre-processing
// grammar has realistic material to normalize.
var measurementPhrases = []string{
	"5-10 mg", "0.5%", "12.5%", "50 mg", "10 ml", "70 kg", "7 days",
	"14 days", "24 hours", "30 min", "<0.05", ">90%", "0.0", "42",
	"2 doses", "95% CI", "March 2020", "5 January 2021", "3.5", "-2",
}
