package cord19

import (
	"fmt"
	"math/rand"
	"strings"

	"covidkg/internal/jsondoc"
	"covidkg/internal/tableparse"
)

// Publication is one synthetic CORD-19-like paper with its ground truth
// attached (topic, table metadata labels) so downstream experiments can
// score themselves.
type Publication struct {
	ID             string
	Title          string
	Abstract       string
	BodyText       string
	Authors        []string
	Journal        string
	PublishDate    string
	Topic          string // ground-truth topical cluster
	Tables         []*PubTable
	FigureCaptions []string
}

// PubTable is a table inside a publication: the raw HTML fragment as it
// would appear in CORD-19, plus generation-time ground truth.
type PubTable struct {
	HTML        string
	Caption     string
	Rows        [][]string
	MetaRows    map[int]bool // ground truth: which rows are metadata
	Orientation string       // "horizontal" (header rows) or "vertical" (header column)
}

// Doc converts the publication to the JSON document shape stored in the
// back-end (§2: parsed into JSON and enriched). Tables are parsed from
// their HTML with the production parser so stored tables reflect what
// extraction actually yields.
func (p *Publication) Doc() jsondoc.Doc {
	authors := make([]any, len(p.Authors))
	for i, a := range p.Authors {
		authors[i] = a
	}
	tables := make([]any, 0, len(p.Tables))
	for _, pt := range p.Tables {
		if t, err := tableparse.ParseOne(pt.HTML); err == nil {
			td := t.Doc()
			tables = append(tables, map[string]any(td))
		}
	}
	figs := make([]any, len(p.FigureCaptions))
	for i, c := range p.FigureCaptions {
		figs[i] = c
	}
	return jsondoc.Doc{
		"_id":             p.ID,
		"title":           p.Title,
		"abstract":        p.Abstract,
		"body_text":       p.BodyText,
		"authors":         authors,
		"journal":         p.Journal,
		"publish_date":    p.PublishDate,
		"topic":           p.Topic,
		"tables":          tables,
		"figure_captions": figs,
	}
}

// Generator produces deterministic synthetic corpora.
type Generator struct {
	rng  *rand.Rand
	seed int64
	seq  int
}

// NewGenerator creates a generator; equal seeds give identical corpora.
// Publication ids embed the seed, so corpora from different seeds can be
// ingested into one store without id collisions.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

func (g *Generator) pick(list []string) string {
	return list[g.rng.Intn(len(list))]
}

func (g *Generator) topic() Topic {
	return Topics[g.rng.Intn(len(Topics))]
}

// sentence builds one research-flavoured sentence biased toward the
// topic's vocabulary, with a small cross-topic leakage — real papers
// mention neighbouring topics in passing, which is what makes ranking
// (and clustering) non-trivial.
func (g *Generator) sentence(t Topic) string {
	n := 8 + g.rng.Intn(10)
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < 0.35:
			words = append(words, g.pick(t.Terms))
		case r < 0.41:
			other := Topics[g.rng.Intn(len(Topics))]
			words = append(words, g.pick(other.Terms))
		case r < 0.5:
			words = append(words, g.pick(measurementPhrases))
		default:
			words = append(words, g.pick(backgroundTerms))
		}
	}
	s := strings.Join(words, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

func (g *Generator) paragraph(t Topic, sentences int) string {
	out := make([]string, sentences)
	for i := range out {
		out[i] = g.sentence(t)
	}
	return strings.Join(out, " ")
}

func (g *Generator) authors() []string {
	n := 2 + g.rng.Intn(5)
	out := make([]string, n)
	for i := range out {
		out[i] = g.pick(firstNames) + " " + g.pick(lastNames)
	}
	return out
}

func (g *Generator) date() string {
	year := 2020 + g.rng.Intn(3)
	month := 1 + g.rng.Intn(12)
	day := 1 + g.rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", year, month, day)
}

var titleTemplates = []string{
	"%s and %s in COVID-19: a %s study",
	"Effect of %s on %s among hospitalized patients: %s findings",
	"%s-associated %s during the pandemic: %s evidence",
	"Assessing %s and %s in SARS-CoV-2 %s",
	"A %s analysis of %s and %s",
}

func (g *Generator) title(t Topic) string {
	tpl := g.pick(titleTemplates)
	return fmt.Sprintf(tpl, g.pick(t.Terms), g.pick(t.Terms), g.pick(backgroundTerms))
}

// Publication generates one synthetic paper.
func (g *Generator) Publication() *Publication {
	t := g.topic()
	g.seq++
	p := &Publication{
		ID:          fmt.Sprintf("cord-%x-%06d", g.seed, g.seq),
		Title:       g.title(t),
		Abstract:    g.paragraph(t, 3+g.rng.Intn(3)),
		BodyText:    g.paragraph(t, 10+g.rng.Intn(15)),
		Authors:     g.authors(),
		Journal:     g.pick(Journals),
		PublishDate: g.date(),
		Topic:       t.Name,
	}
	nt := g.rng.Intn(3) // 0..2 tables
	for i := 0; i < nt; i++ {
		p.Tables = append(p.Tables, g.Table(t))
	}
	nf := g.rng.Intn(3)
	for i := 0; i < nf; i++ {
		p.FigureCaptions = append(p.FigureCaptions,
			fmt.Sprintf("Figure %d: %s", i+1, g.sentence(t)))
	}
	return p
}

// Corpus generates n publications.
func (g *Generator) Corpus(n int) []*Publication {
	out := make([]*Publication, n)
	for i := range out {
		out[i] = g.Publication()
	}
	return out
}

// SideEffectPaper generates a publication focused on vaccine side-effects
// whose tables follow the Figure 6 shape: rows of (vaccine, dose,
// side-effect, frequency). These feed the meta-profile experiments.
func (g *Generator) SideEffectPaper(vaccines []string) *Publication {
	t := Topics[0] // vaccines
	g.seq++
	p := &Publication{
		ID:          fmt.Sprintf("cord-se-%x-%06d", g.seed, g.seq),
		Title:       fmt.Sprintf("Vaccine side-effects after %s and %s immunization", vaccines[0], g.pick(t.Terms)),
		Abstract:    g.paragraph(t, 3),
		BodyText:    g.paragraph(t, 8),
		Authors:     g.authors(),
		Journal:     g.pick(Journals),
		PublishDate: g.date(),
		Topic:       t.Name,
	}
	p.Tables = append(p.Tables, g.sideEffectTable(vaccines))
	return p
}

// sideEffectTable builds the canonical Figure 6 table: header row plus
// one data row per (vaccine, dose, side-effect) sample.
func (g *Generator) sideEffectTable(vaccines []string) *PubTable {
	header := []string{"Vaccine", "Dose", "Side effect", "Frequency %"}
	rows := [][]string{header}
	meta := map[int]bool{0: true}
	for _, v := range vaccines {
		for dose := 1; dose <= 2; dose++ {
			n := 2 + g.rng.Intn(3)
			for i := 0; i < n; i++ {
				rows = append(rows, []string{
					v,
					fmt.Sprintf("%d", dose),
					g.pick(SideEffects),
					fmt.Sprintf("%.1f", 1+g.rng.Float64()*40),
				})
			}
		}
	}
	caption := fmt.Sprintf("Table %d: Prevalence of vaccine side effects by dose", 1+g.rng.Intn(4))
	return &PubTable{
		HTML:        RenderHTMLTable(caption, rows, []int{0}),
		Caption:     caption,
		Rows:        rows,
		MetaRows:    meta,
		Orientation: "horizontal",
	}
}

// RenderHTMLTable renders rows as an HTML fragment, marking headerRows
// with <th> cells. Exported so tests and tools can fabricate fragments.
func RenderHTMLTable(caption string, rows [][]string, headerRows []int) string {
	head := map[int]bool{}
	for _, h := range headerRows {
		head[h] = true
	}
	var b strings.Builder
	b.WriteString("<table>")
	if caption != "" {
		b.WriteString("<caption>" + caption + "</caption>")
	}
	for i, row := range rows {
		b.WriteString("<tr>")
		tag := "td"
		if head[i] {
			tag = "th"
		}
		for _, cell := range row {
			b.WriteString("<" + tag + ">" + cell + "</" + tag + ">")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	return b.String()
}
