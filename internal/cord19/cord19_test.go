package cord19

import (
	"strings"
	"testing"

	"covidkg/internal/tableparse"
)

func TestDeterminism(t *testing.T) {
	a := NewGenerator(42).Corpus(20)
	b := NewGenerator(42).Corpus(20)
	for i := range a {
		if a[i].Title != b[i].Title || a[i].Abstract != b[i].Abstract || a[i].ID != b[i].ID {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
	c := NewGenerator(43).Corpus(20)
	same := 0
	for i := range a {
		if a[i].Title == c[i].Title {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestPublicationShape(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 50; i++ {
		p := g.Publication()
		if p.ID == "" || p.Title == "" || p.Abstract == "" || p.BodyText == "" {
			t.Fatalf("empty field in %+v", p)
		}
		if len(p.Authors) < 2 {
			t.Fatalf("authors = %v", p.Authors)
		}
		if p.Topic == "" {
			t.Fatal("no ground-truth topic")
		}
		found := false
		for _, tn := range TopicNames() {
			if tn == p.Topic {
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown topic %q", p.Topic)
		}
	}
}

func TestTopicVocabularyShowsUp(t *testing.T) {
	g := NewGenerator(1)
	p := g.Publication()
	var topic Topic
	for _, tp := range Topics {
		if tp.Name == p.Topic {
			topic = tp
		}
	}
	text := strings.ToLower(p.Abstract + " " + p.BodyText)
	hits := 0
	for _, term := range topic.Terms {
		if strings.Contains(text, strings.ToLower(term)) {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("topic %q vocabulary underrepresented: %d hits", p.Topic, hits)
	}
}

func TestPublicationDoc(t *testing.T) {
	g := NewGenerator(3)
	var p *Publication
	for {
		p = g.Publication()
		if len(p.Tables) > 0 {
			break
		}
	}
	d := p.Doc()
	if d.GetString("title") != p.Title {
		t.Fatal("title mismatch")
	}
	if len(d.GetArray("tables")) != len(p.Tables) {
		t.Fatalf("tables = %d, want %d", len(d.GetArray("tables")), len(p.Tables))
	}
	if len(d.GetArray("authors")) != len(p.Authors) {
		t.Fatal("authors mismatch")
	}
}

func TestTableHTMLRoundTrip(t *testing.T) {
	g := NewGenerator(9)
	tp := g.Table(Topics[0])
	parsed, err := tableparse.ParseOne(tp.HTML)
	if err != nil {
		t.Fatalf("generated HTML unparseable: %v", err)
	}
	if parsed.NumRows() != len(tp.Rows) {
		t.Fatalf("rows: parsed %d, ground truth %d", parsed.NumRows(), len(tp.Rows))
	}
	if parsed.Caption != tp.Caption {
		t.Fatalf("caption: %q vs %q", parsed.Caption, tp.Caption)
	}
	// markup header hints agree with ground truth
	for _, h := range parsed.MarkupHeaderRows {
		if !tp.MetaRows[h] {
			t.Fatalf("markup header %d not in ground truth %v", h, tp.MetaRows)
		}
	}
}

func TestLabeledTablesShape(t *testing.T) {
	g := NewGenerator(11)
	tables := g.LabeledTables(200, 0.5)
	var horiz, vert, med, web, headerless int
	for _, lt := range tables {
		if len(lt.Rows) != len(lt.Meta) {
			t.Fatalf("labels misaligned: %d rows, %d labels", len(lt.Rows), len(lt.Meta))
		}
		if lt.NumMeta() == 0 {
			headerless++
		}
		if lt.NumMeta() >= len(lt.Rows) {
			t.Fatal("table with no data row")
		}
		if lt.NumMeta() > 0 && !lt.Meta[0] {
			t.Fatal("tables with metadata must start with it")
		}
		// rectangular
		w := len(lt.Rows[0])
		for _, r := range lt.Rows {
			if len(r) != w {
				t.Fatalf("ragged generated table: %v", lt.Rows)
			}
		}
		switch lt.Orientation {
		case "horizontal":
			horiz++
		case "vertical":
			vert++
		default:
			t.Fatalf("orientation %q", lt.Orientation)
		}
		switch lt.Domain {
		case "medical":
			med++
		case "web":
			web++
		}
	}
	if horiz == 0 || vert == 0 {
		t.Fatalf("orientation mix: %d/%d", horiz, vert)
	}
	if med == 0 || web == 0 {
		t.Fatalf("domain mix: %d/%d", med, web)
	}
	// headerless continuation fragments must exist but not dominate
	if headerless == 0 || headerless > 80 {
		t.Fatalf("headerless fragments = %d/200", headerless)
	}
}

func TestWDCTablesAreWeb(t *testing.T) {
	for _, lt := range NewGenerator(5).WDCTables(20) {
		if lt.Domain != "web" {
			t.Fatalf("domain = %q", lt.Domain)
		}
	}
}

func TestSideEffectPaper(t *testing.T) {
	g := NewGenerator(21)
	p := g.SideEffectPaper([]string{"Pfizer-BioNTech", "Moderna"})
	if len(p.Tables) != 1 {
		t.Fatalf("tables = %d", len(p.Tables))
	}
	tb := p.Tables[0]
	if tb.Rows[0][0] != "Vaccine" {
		t.Fatalf("header = %v", tb.Rows[0])
	}
	seenVaccines := map[string]bool{}
	for _, r := range tb.Rows[1:] {
		seenVaccines[r[0]] = true
		if r[1] != "1" && r[1] != "2" {
			t.Fatalf("dose = %q", r[1])
		}
	}
	if !seenVaccines["Pfizer-BioNTech"] || !seenVaccines["Moderna"] {
		t.Fatalf("vaccines = %v", seenVaccines)
	}
	if _, err := tableparse.ParseOne(tb.HTML); err != nil {
		t.Fatalf("side-effect HTML unparseable: %v", err)
	}
}

func TestUnseenVaccineNeverGenerated(t *testing.T) {
	g := NewGenerator(2)
	for _, p := range g.Corpus(100) {
		all := p.Title + p.Abstract + p.BodyText
		for _, tb := range p.Tables {
			all += tb.HTML
		}
		if strings.Contains(all, UnseenVaccine) {
			t.Fatalf("unseen vaccine %q leaked into corpus", UnseenVaccine)
		}
	}
}

func TestRenderHTMLTable(t *testing.T) {
	html := RenderHTMLTable("Cap", [][]string{{"H"}, {"d"}}, []int{0})
	if !strings.Contains(html, "<th>H</th>") || !strings.Contains(html, "<td>d</td>") {
		t.Fatalf("html = %s", html)
	}
	if !strings.Contains(html, "<caption>Cap</caption>") {
		t.Fatalf("caption missing: %s", html)
	}
}

func TestCorpusTopicSpread(t *testing.T) {
	g := NewGenerator(13)
	counts := map[string]int{}
	for _, p := range g.Corpus(400) {
		counts[p.Topic]++
	}
	for _, name := range TopicNames() {
		if counts[name] == 0 {
			t.Errorf("topic %q never generated", name)
		}
	}
}
