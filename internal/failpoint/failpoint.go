// Package failpoint is the runtime fault layer of the storage
// robustness stack: a registry of named targets (a docstore replica, a
// remote backend, any failure domain) onto which tests and chaos
// harnesses inject latency, probabilistic errors, or full outages while
// the process keeps running. It complements internal/faultfs, which
// injects at-rest faults into the filesystem during snapshot commits —
// failpoint injects in-flight faults into the serving path.
//
// Injection is deterministic: the registry owns a seeded PRNG, so a
// chaos run with a fixed seed reproduces the same error schedule, and
// the latency sleeper is injectable so unit tests never actually sleep.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every faulted operation returns, wrapped
// with the target name. Callers distinguish injected faults from real
// ones with errors.Is.
var ErrInjected = errors.New("failpoint: injected failure")

// Rule describes the fault behavior of one target. The zero Rule is a
// healthy target.
type Rule struct {
	// Down makes every operation against the target fail — a dead
	// replica, an unreachable node.
	Down bool
	// ErrRate in [0,1] fails that fraction of operations, drawn from
	// the registry's seeded PRNG — a flaky link.
	ErrRate float64
	// Latency is added to every operation before it completes — a slow
	// disk or saturated peer. Applied even when the operation then
	// fails, like a real timeout.
	Latency time.Duration
	// SkipChecks lets the first N checks after the rule is installed
	// pass untouched before the fault behavior starts — a target that
	// dies mid-sequence, e.g. between a write and the read-back that
	// follows it. Counted per rule installation: Set resets the budget.
	SkipChecks int
}

// Registry holds the active rules. A nil *Registry is valid and injects
// nothing, so production paths pay one nil check when chaos is off.
type Registry struct {
	mu    sync.Mutex
	rules map[string]Rule
	skips map[string]int // remaining SkipChecks budget per rule key
	rng   *rand.Rand
	hits  map[string]int // injected failures per target
	seen  map[string]int // total checks per target

	// sleep is the latency sink; tests replace it to avoid real delays.
	sleep func(time.Duration)
}

// New builds an empty registry with a deterministic PRNG.
func New(seed int64) *Registry {
	return &Registry{
		rules: map[string]Rule{},
		skips: map[string]int{},
		rng:   rand.New(rand.NewSource(seed)),
		hits:  map[string]int{},
		seen:  map[string]int{},
		sleep: time.Sleep,
	}
}

// SetSleeper replaces the function used to realize injected latency
// (tests pass a recorder; nil restores time.Sleep).
func (r *Registry) SetSleeper(fn func(time.Duration)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		fn = time.Sleep
	}
	r.sleep = fn
}

// Set installs (or replaces) the rule for a target. A target ending in
// "*" is a prefix rule matching every target that starts with the part
// before the star — Set("shard2/*", Rule{Down: true}) darkens a whole
// shard.
func (r *Registry) Set(target string, rule Rule) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules[target] = rule
	r.skips[target] = rule.SkipChecks
}

// Clear removes the rule for a target (exact key, including prefix
// keys).
func (r *Registry) Clear(target string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.rules, target)
	delete(r.skips, target)
}

// ClearAll removes every rule, returning the registry to fully healthy.
func (r *Registry) ClearAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = map[string]Rule{}
	r.skips = map[string]int{}
}

// lookup resolves the effective rule for a target: an exact rule wins,
// otherwise the longest matching prefix rule applies.
func (r *Registry) lookup(target string) (Rule, string, bool) {
	if rule, ok := r.rules[target]; ok {
		return rule, target, true
	}
	var best Rule
	var bestKey string
	bestLen := -1
	for key, rule := range r.rules {
		if !strings.HasSuffix(key, "*") {
			continue
		}
		prefix := strings.TrimSuffix(key, "*")
		if strings.HasPrefix(target, prefix) && len(prefix) > bestLen {
			best, bestKey, bestLen = rule, key, len(prefix)
		}
	}
	return best, bestKey, bestLen >= 0
}

// Check runs one operation against the target through the fault rules:
// it sleeps any injected latency, then fails if the target is down or
// the seeded PRNG lands inside ErrRate. Nil registries and unknown
// targets always pass.
func (r *Registry) Check(target string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rule, key, ok := r.lookup(target)
	if !ok {
		r.mu.Unlock()
		return nil
	}
	r.seen[target]++
	if r.skips[key] > 0 {
		r.skips[key]--
		r.mu.Unlock()
		return nil
	}
	fail := rule.Down
	if !fail && rule.ErrRate > 0 && r.rng.Float64() < rule.ErrRate {
		fail = true
	}
	if fail {
		r.hits[target]++
	}
	sleep := r.sleep
	r.mu.Unlock()

	if rule.Latency > 0 {
		sleep(rule.Latency)
	}
	if fail {
		return fmt.Errorf("%w: %s", ErrInjected, target)
	}
	return nil
}

// Injected returns how many checks against target were failed so far.
func (r *Registry) Injected(target string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[target]
}

// Checks returns how many checks matched a rule for target so far.
func (r *Registry) Checks(target string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[target]
}
