package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestNilRegistryPasses(t *testing.T) {
	var r *Registry
	if err := r.Check("anything"); err != nil {
		t.Fatalf("nil registry injected: %v", err)
	}
	r.Set("x", Rule{Down: true}) // must not panic
	r.Clear("x")
	r.ClearAll()
	if r.Injected("x") != 0 || r.Checks("x") != 0 {
		t.Fatal("nil registry reported counts")
	}
}

func TestDownAndClear(t *testing.T) {
	r := New(1)
	r.Set("shard0/replica1", Rule{Down: true})
	if err := r.Check("shard0/replica1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := r.Check("shard0/replica0"); err != nil {
		t.Fatalf("unruled target failed: %v", err)
	}
	r.Clear("shard0/replica1")
	if err := r.Check("shard0/replica1"); err != nil {
		t.Fatalf("cleared target still failing: %v", err)
	}
	if got := r.Injected("shard0/replica1"); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestPrefixRuleDarkensShard(t *testing.T) {
	r := New(1)
	r.Set("shard2/*", Rule{Down: true})
	for _, tgt := range []string{"shard2/replica0", "shard2/replica1"} {
		if err := r.Check(tgt); !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: want ErrInjected, got %v", tgt, err)
		}
	}
	if err := r.Check("shard1/replica0"); err != nil {
		t.Fatalf("other shard failed: %v", err)
	}
	// exact rule overrides the prefix rule
	r.Set("shard2/replica1", Rule{})
	if err := r.Check("shard2/replica1"); err != nil {
		t.Fatalf("exact healthy rule did not override prefix: %v", err)
	}
}

func TestErrRateDeterministic(t *testing.T) {
	run := func() []bool {
		r := New(42)
		r.Set("t", Rule{ErrRate: 0.5})
		out := make([]bool, 100)
		for i := range out {
			out[i] = r.Check("t") != nil
		}
		return out
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 30 || fails > 70 {
		t.Fatalf("ErrRate 0.5 produced %d/100 failures", fails)
	}
}

func TestLatencyUsesSleeper(t *testing.T) {
	r := New(1)
	var slept []time.Duration
	r.SetSleeper(func(d time.Duration) { slept = append(slept, d) })
	r.Set("slow", Rule{Latency: 25 * time.Millisecond})
	if err := r.Check("slow"); err != nil {
		t.Fatalf("latency-only rule failed: %v", err)
	}
	// latency applies even when the op then fails
	r.Set("slow", Rule{Latency: 10 * time.Millisecond, Down: true})
	if err := r.Check("slow"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(slept) != 2 || slept[0] != 25*time.Millisecond || slept[1] != 10*time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
	if got := r.Checks("slow"); got != 2 {
		t.Fatalf("Checks = %d, want 2", got)
	}
}
