package api

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestRecoverMiddleware: a panicking handler yields a 500 JSON error
// and the process survives to serve the next request.
func TestRecoverMiddleware(t *testing.T) {
	log.SetOutput(io.Discard) // the stack trace is expected noise here
	defer log.SetOutput(os.Stderr)

	// a server over a nil system: any data handler dereferences sys and
	// panics — exactly the class of bug the middleware must contain
	s := NewServer(nil)
	rec, body := get(t, s, "/api/stats")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if body["error"] == "" || body["error"] == nil {
		t.Fatalf("no JSON error body: %q", rec.Body.String())
	}
	if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("content type = %q", rec.Header().Get("Content-Type"))
	}

	// the mux (and process) is still alive
	rec2, body2 := get(t, s, "/healthz")
	if rec2.Code != http.StatusOK || body2["status"] != "ok" {
		t.Fatalf("server dead after panic: %d %v", rec2.Code, body2)
	}
}

// TestRecoverMiddlewarePassesAbortHandler: net/http's own abort
// sentinel must propagate, not turn into a 500.
func TestRecoverMiddlewarePassesAbortHandler(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want ErrAbortHandler to pass through", r)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}
