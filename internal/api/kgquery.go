package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"covidkg/internal/kg"
	"covidkg/internal/kgquery"
)

// KG read-surface pagination defaults, shared by /kg/nodes children
// expansion, /kg/search, and /kg/query path pages.
const (
	kgDefaultPageSize = 20
	kgMaxPageSize     = 100
	// kgQueryResultCap bounds how many paths one query may materialize
	// server-side; pagination then slices this ranked set.
	kgQueryResultCap = 1000
	// kgHypothesesCap bounds ranked hypothesis paths per request.
	kgHypothesesCap = 100
)

// pageEnv is the pagination envelope, field-compatible with the
// publication search page (search.Page): Results/Total/PageNum/
// PerPage/NumPages, so clients paginate every list the same way.
type pageEnv[T any] struct {
	Results  []T
	Total    int
	PageNum  int
	PerPage  int
	NumPages int
}

// paginateSlice pages an in-memory result set into the envelope. An
// empty set still has one (empty) page; an out-of-range page returns
// empty Results with the true Total so clients can re-aim.
func paginateSlice[T any](all []T, page, size int) pageEnv[T] {
	total := len(all)
	numPages := (total + size - 1) / size
	if numPages < 1 {
		numPages = 1
	}
	lo := (page - 1) * size
	hi := lo + size
	if lo > total {
		lo = total
	}
	if hi > total {
		hi = total
	}
	out := make([]T, hi-lo)
	copy(out, all[lo:hi])
	return pageEnv[T]{Results: out, Total: total, PageNum: page, PerPage: size, NumPages: numPages}
}

// pageParams reads page/page_size query parameters with clamping.
func pageParams(q url.Values) (page, size int) {
	page, _ = strconv.Atoi(q.Get("page"))
	if page < 1 {
		page = 1
	}
	size, _ = strconv.Atoi(q.Get("page_size"))
	if size < 1 {
		size = kgDefaultPageSize
	}
	if size > kgMaxPageSize {
		size = kgMaxPageSize
	}
	return page, size
}

// writeKGErr maps knowledge-graph errors onto the uniform envelope: an
// unknown node or concept is 404 not_found, a malformed query is 400
// bad_query (with the parse offset attached), and a dead context gets
// the lifecycle statuses — never a blanket 500 internal.
func writeKGErr(w http.ResponseWriter, r *http.Request, err error, fallback int) {
	var pe *kgquery.ParseError
	switch {
	case errors.Is(err, kg.ErrNodeNotFound):
		writeErr(w, r, http.StatusNotFound, err)
	case errors.As(err, &pe):
		writeErr(w, r, http.StatusBadRequest, err)
	default:
		writeErr(w, r, failStatus(err, fallback), err)
	}
}

// handleKGNodes is the redesigned node resource:
//
//	GET /api/v1/kg/nodes/{id}?expand=children&page=&page_size=
//
// Without expand it answers the node plus its root path (what the
// deprecated /kg/node/{id} returned); expand=children embeds one page
// of children in the standard envelope, replacing the old unbounded
// /kg/node/{id}/children listing.
func (s *Server) handleKGNodes(w http.ResponseWriter, r *http.Request) {
	n, err := s.sys.Graph.Node(r.PathValue("id"))
	if err != nil {
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	path, _ := s.sys.Graph.PathToRoot(n.ID)
	payload := map[string]any{"node": n, "path": path}
	if r.URL.Query().Get("expand") == "children" {
		env, err := s.childrenPage(r)
		if err != nil {
			writeKGErr(w, r, err, http.StatusInternalServerError)
			return
		}
		payload["children"] = env
	}
	writeJSON(w, http.StatusOK, payload)
}

// childrenPage loads one page of a node's children.
func (s *Server) childrenPage(r *http.Request) (pageEnv[kg.Node], error) {
	kids, err := s.sys.Graph.Children(r.PathValue("id"))
	if err != nil {
		return pageEnv[kg.Node]{}, err
	}
	page, size := pageParams(r.URL.Query())
	return paginateSlice(kids, page, size), nil
}

// handleNodeLegacy serves the deprecated GET /kg/node/{id}: the node
// resource without expansion.
func (s *Server) handleNodeLegacy(w http.ResponseWriter, r *http.Request) {
	n, err := s.sys.Graph.Node(r.PathValue("id"))
	if err != nil {
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	path, _ := s.sys.Graph.PathToRoot(n.ID)
	writeJSON(w, http.StatusOK, map[string]any{"node": n, "path": path})
}

// handleChildrenLegacy serves the deprecated GET /kg/node/{id}/children.
// It answers the same paginated envelope as the successor's
// expand=children (bounded responses are a behavior fix, not a v2): an
// un-parameterized request gets page 1 rather than every child.
func (s *Server) handleChildrenLegacy(w http.ResponseWriter, r *http.Request) {
	env, err := s.childrenPage(r)
	if err != nil {
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// kgQueryRequest is the POST /api/v1/kg/query body.
type kgQueryRequest struct {
	// Query is the path-query text (see DESIGN.md for the grammar).
	Query string `json:"query"`
	// Params binds $name references in the query text.
	Params map[string]string `json:"params,omitempty"`
	// Page/PageSize slice the ranked path set.
	Page     int `json:"page"`
	PageSize int `json:"page_size"`
	// MaxExpansions lowers (never raises) the executor's work budget.
	MaxExpansions int `json:"max_expansions"`
}

// handleKGQuery executes a declarative path query:
//
//	POST /api/v1/kg/query
//	{"query": "(norm=\"vaccines\")-{1,3}->(label~\"mrna\")", "page": 1}
//
// The request rides the search route class — its admission slots and
// deadline — and the executor checks the request context every yield
// interval, so a hung client or an expired deadline stops the
// traversal, not just the response write. Parse errors are 400
// bad_query with the byte offset of the fault; budget exhaustion is a
// 200 with "truncated": true, mirroring partial search results.
func (s *Server) handleKGQuery(w http.ResponseWriter, r *http.Request) {
	var req kgQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Query == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing query text"))
		return
	}
	q, err := kgquery.Parse(req.Query, req.Params)
	if err != nil {
		s.met.Counter("kgquery.parse_errors").Inc()
		writeKGErr(w, r, err, http.StatusBadRequest)
		return
	}
	opts := kgquery.Options{Limit: kgQueryResultCap}
	if req.MaxExpansions > 0 && req.MaxExpansions < kgquery.DefaultMaxExpansions {
		opts.MaxExpansions = req.MaxExpansions
	}
	snap := s.sys.Graph.Snapshot()
	plan := kgquery.Compile(q, snap)
	start := time.Now()
	res, err := plan.Execute(r.Context(), snap, opts)
	s.met.Histogram("kgquery.latency").Observe(time.Since(start))
	s.met.Counter("kgquery.queries").Inc()
	if err != nil {
		s.met.Counter("kgquery.cancelled").Inc()
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	s.met.Counter("kgquery.expansions").Add(int64(res.Expansions))
	s.met.Counter("kgquery.paths_returned").Add(int64(len(res.Paths)))
	if res.Truncated {
		s.met.Counter("kgquery.truncated").Inc()
	}

	page, size := req.Page, req.PageSize
	if page < 1 {
		page = 1
	}
	if size < 1 {
		size = kgDefaultPageSize
	}
	if size > kgMaxPageSize {
		size = kgMaxPageSize
	}
	env := paginateSlice(res.Paths, page, size)
	writeJSON(w, http.StatusOK, map[string]any{
		"paths":     env.Results,
		"total":     env.Total,
		"page_num":  env.PageNum,
		"per_page":  env.PerPage,
		"num_pages": env.NumPages,
		"expansions": res.Expansions,
		"truncated":  res.Truncated,
		"plan": map[string]any{
			"entry":            plan.Entry.String(),
			"reversed":         plan.Reversed,
			"entry_candidates": res.EntryCandidates,
		},
	})
}

// kgHypothesesRequest is the POST /api/v1/kg/hypotheses body.
type kgHypothesesRequest struct {
	From    string `json:"from"`
	To      string `json:"to"`
	MaxHops int    `json:"max_hops"`
	Limit   int    `json:"limit"`
}

// handleKGHypotheses returns ranked evidence-scored paths between two
// concepts — the hypothesis-path surface: "how does BNT162b2 connect to
// Rash, and how much literature backs each link?" Unknown concepts are
// 404 not_found.
func (s *Server) handleKGHypotheses(w http.ResponseWriter, r *http.Request) {
	var req kgHypothesesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.From == "" || req.To == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("both from and to concepts are required"))
		return
	}
	limit := req.Limit
	if limit < 1 {
		limit = kgDefaultPageSize
	}
	if limit > kgHypothesesCap {
		limit = kgHypothesesCap
	}
	snap := s.sys.Graph.Snapshot()
	start := time.Now()
	res, err := kgquery.Hypotheses(r.Context(), snap, req.From, req.To, req.MaxHops,
		kgquery.Options{Limit: kgquery.MaxLimit})
	s.met.Histogram("kgquery.latency").Observe(time.Since(start))
	s.met.Counter("kgquery.hypotheses").Inc()
	if err != nil {
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	paths := res.Paths
	if len(paths) > limit {
		paths = paths[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"from":       req.From,
		"to":         req.To,
		"max_hops":   req.MaxHops,
		"paths":      paths,
		"total":      len(res.Paths),
		"expansions": res.Expansions,
		"truncated":  res.Truncated,
	})
}
