package api

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Priority orders tenants for admission control: when a route class
// saturates, lower priorities are shed first and PriorityHigh tenants
// shed last. The admission ceilings per priority are monotone
// (low ≤ standard ≤ high = class capacity), which makes "a high-priority
// request was shed while a lower-priority one would have been admitted"
// structurally impossible — the admission_inversions counter exists to
// prove that invariant holds at runtime, not to tolerate violations.
type Priority int

const (
	// PriorityLow is best-effort traffic: free tiers, crawlers,
	// batch consumers. Shed first.
	PriorityLow Priority = iota
	// PriorityStandard is the default for unidentified traffic.
	PriorityStandard
	// PriorityHigh is paying/interactive traffic. Shed last.
	PriorityHigh
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityStandard:
		return "standard"
	case PriorityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// ParsePriority maps a config string onto a Priority; unknown strings
// fall back to standard.
func ParsePriority(s string) Priority {
	switch s {
	case "low":
		return PriorityLow
	case "high":
		return PriorityHigh
	default:
		return PriorityStandard
	}
}

// TenantLimits is one tenant's traffic contract. The zero value means
// standard priority, no rate limit, and no quota — the treatment
// anonymous traffic gets.
type TenantLimits struct {
	// Priority decides shed order under saturation.
	Priority Priority
	// RatePerSec refills the tenant's token bucket; 0 disables rate
	// limiting for the tenant.
	RatePerSec float64
	// Burst is the bucket capacity; 0 defaults to max(1, ceil(RatePerSec)).
	Burst int
	// Quota caps the total requests served to the tenant over the
	// server's lifetime (the soak run's budget); 0 means unlimited.
	// Exhausting the quota is terminal: 429 with code quota_exceeded
	// until the process restarts.
	Quota int64
}

// tokenBucket is a standard token bucket with an injectable clock.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now}
}

// take consumes one token if available. It returns whether the take
// succeeded, how long until a token would be available (for
// Retry-After), the whole tokens remaining, and when the bucket will be
// full again (the X-RateLimit-Reset instant).
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration, remaining int, reset time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	if !now.Before(b.last) {
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		ok = true
	} else if b.rate > 0 {
		wait = time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	}
	remaining = int(b.tokens)
	if b.rate > 0 {
		reset = now.Add(time.Duration((b.burst - b.tokens) / b.rate * float64(time.Second)))
	}
	return ok, wait, remaining, reset
}

// tenantState is the live accounting for one tenant id.
type tenantState struct {
	id     string
	limits TenantLimits
	bucket *tokenBucket // nil when the tenant has no rate limit
	served atomic.Int64 // requests admitted and handled; the quota counter
}

// tryQuota consumes one unit of the tenant's quota, or reports
// exhaustion. The CAS loop makes the budget exact under concurrency: a
// race can never admit the quota+1'th request.
func (t *tenantState) tryQuota() bool {
	for {
		cur := t.served.Load()
		if t.limits.Quota > 0 && cur >= t.limits.Quota {
			return false
		}
		if t.served.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// anonTenant keys the shared state for requests with no (or an
// unconfigured) X-Tenant-ID.
const anonTenant = "anonymous"

// tenants resolves and caches per-tenant state. Configured tenants get
// individual buckets and quotas; everything else shares the anonymous
// state so a spray of random ids cannot grow server memory or metric
// cardinality without bound.
type tenants struct {
	mu    sync.Mutex
	byID  map[string]*tenantState
	deflt TenantLimits
	now   func() time.Time
}

func newTenants(cfg map[string]TenantLimits, deflt TenantLimits, now func() time.Time) *tenants {
	ts := &tenants{byID: make(map[string]*tenantState, len(cfg)+1), deflt: deflt, now: now}
	for id, lim := range cfg {
		ts.byID[id] = ts.newState(id, lim)
	}
	ts.byID[anonTenant] = ts.newState(anonTenant, deflt)
	return ts
}

func (ts *tenants) newState(id string, lim TenantLimits) *tenantState {
	st := &tenantState{id: id, limits: lim}
	if lim.RatePerSec > 0 {
		st.bucket = newTokenBucket(lim.RatePerSec, lim.Burst, ts.now())
	}
	return st
}

// resolve maps a raw X-Tenant-ID header onto tenant state; unknown or
// empty ids collapse onto the anonymous tenant.
func (ts *tenants) resolve(rawID string) *tenantState {
	id := sanitizeID(rawID)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st, ok := ts.byID[id]; ok {
		return st
	}
	return ts.byID[anonTenant]
}

const tenantKey ctxKey = 1

// TenantFromContext returns the tenant id the request resolved to
// ("anonymous" outside configured tenants, "" outside a request).
func TenantFromContext(ctx context.Context) string {
	if st, ok := ctx.Value(tenantKey).(*tenantState); ok {
		return st.id
	}
	return ""
}

// tenantState returns the request's resolved tenant, falling back to
// the anonymous tenant for contexts that never passed the middleware
// (direct handler invocations in tests).
func (s *Server) tenantState(ctx context.Context) *tenantState {
	if st, ok := ctx.Value(tenantKey).(*tenantState); ok {
		return st
	}
	return s.tenants.resolve("")
}

// tenantMiddleware resolves X-Tenant-ID onto tenant state, stores it in
// the context, and echoes the resolved id so clients can confirm which
// contract applied.
func (s *Server) tenantMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := s.tenants.resolve(r.Header.Get("X-Tenant-ID"))
		w.Header().Set("X-Tenant-ID", st.id)
		ctx := context.WithValue(r.Context(), tenantKey, st)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// setRateHeaders attaches the X-RateLimit-* trio for a rate-limited
// tenant: Limit is the burst capacity, Remaining the whole tokens left,
// Reset the unix second the bucket refills completely.
func setRateHeaders(w http.ResponseWriter, st *tenantState, remaining int, reset time.Time) {
	if st.bucket == nil {
		return
	}
	w.Header().Set("X-RateLimit-Limit", strconv.Itoa(int(st.bucket.burst)))
	if remaining < 0 {
		remaining = 0
	}
	w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
	if !reset.IsZero() {
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(reset.Unix(), 10))
	}
}

// ---------------------------------------------------- priority admission

// admitter bounds a route class's in-flight requests with per-priority
// ceilings: limits[p] is the in-flight level at and above which priority
// p is shed. Ceilings are monotone in priority and limits[high] is the
// class capacity, so as the class fills, low-priority traffic sheds
// first and high-priority traffic owns the final reserved slots.
type admitter struct {
	mu       sync.Mutex
	inflight int
	limits   [numPriorities]int
}

// newAdmitter builds the monotone ceilings from a class capacity:
// low may fill 50%, standard 80% (rounded up), high 100%, each at
// least one slot.
func newAdmitter(capacity int) *admitter {
	low := capacity / 2
	if low < 1 {
		low = 1
	}
	std := (capacity*4 + 4) / 5
	if std < low {
		std = low
	}
	return &admitter{limits: [numPriorities]int{low, std, capacity}}
}

// acquire takes an in-flight slot for priority p, or reports a shed.
// inversion reports whether a strictly lower priority would have been
// admitted at this exact instant — by construction of the monotone
// ceilings it is always false; it is computed (under the same lock that
// decided the shed) so the soak audit can assert the invariant held.
func (a *admitter) acquire(p Priority) (ok, inversion bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight < a.limits[p] {
		a.inflight++
		return true, false
	}
	for q := Priority(0); q < p; q++ {
		if a.inflight < a.limits[q] {
			return false, true
		}
	}
	return false, false
}

// release returns an in-flight slot.
func (a *admitter) release() {
	a.mu.Lock()
	a.inflight--
	a.mu.Unlock()
}

// level returns the current in-flight count (for gauges and tests).
func (a *admitter) level() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
