package api

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"covidkg/internal/cord19"
	"covidkg/internal/core"
	"covidkg/internal/metrics"
)

// liteServer builds a server over an untrained 30-doc system — search
// and aggregate work straight off the ingest index, which is all the
// lifecycle tests need — with an isolated metrics registry.
func liteServer(t *testing.T, cfg Config) (*Server, *metrics.Registry) {
	t.Helper()
	sys := core.NewSystem(core.DefaultConfig())
	if err := sys.IngestPublications(cord19.NewGenerator(9).Corpus(30)); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	return NewServerWith(sys, cfg), reg
}

func TestV1RoutesAndDeprecatedAliases(t *testing.T) {
	s, _ := testServer(t)
	pairs := [][2]string{
		{"/api/v1/stats", "/api/stats"},
		{"/api/v1/search?q=vaccine", "/api/search?q=vaccine"},
		{"/api/v1/kg", "/api/kg"},
		{"/api/v1/kg/search?q=vaccines", "/api/kg/search?q=vaccines"},
		{"/api/v1/metrics", "/api/metrics"},
		{"/api/v1/bias", "/api/bias"},
		{"/api/v1/models", "/api/models"},
		{"/api/v1/reviews", "/api/reviews"},
	}
	for _, p := range pairs {
		v1, legacy := p[0], p[1]
		rec, _ := get(t, s, v1)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", v1, rec.Code)
		}
		if rec.Header().Get("Deprecation") != "" {
			t.Fatalf("%s marked deprecated", v1)
		}
		lrec, _ := get(t, s, legacy)
		if lrec.Code != http.StatusOK {
			t.Fatalf("%s = %d", legacy, lrec.Code)
		}
		if lrec.Header().Get("Deprecation") != "true" {
			t.Fatalf("%s missing Deprecation header", legacy)
		}
		if link := lrec.Header().Get("Link"); !strings.Contains(link, "/api/v1/") ||
			!strings.Contains(link, "successor-version") {
			t.Fatalf("%s Link = %q", legacy, link)
		}
		// both surfaces serve the same payload (skip routes whose body
		// legitimately varies between calls: metrics mutate with each
		// request, bias-report maps serialize in nondeterministic order)
		deterministic := !strings.HasPrefix(v1, "/api/v1/metrics") &&
			!strings.HasPrefix(v1, "/api/v1/bias")
		if deterministic && rec.Body.String() != lrec.Body.String() {
			t.Fatalf("%s and %s diverge", v1, legacy)
		}
	}
}

func TestErrorEnvelope(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"GET", "/api/v1/search?q=", "", http.StatusBadRequest, "bad_query"},
		{"GET", "/api/v1/search?engine=warp&q=x", "", http.StatusBadRequest, "bad_query"},
		{"GET", "/api/v1/publications/nope", "", http.StatusNotFound, "not_found"},
		{"GET", "/api/v1/kg/node/bogus", "", http.StatusNotFound, "not_found"},
		{"GET", "/api/v1/models/none", "", http.StatusNotFound, "not_found"},
		{"POST", "/api/v1/aggregate", `{"pipeline": [{"$warp": 1}]}`, http.StatusBadRequest, "bad_query"},
		{"POST", "/api/v1/aggregate", `{"collection": "nope", "pipeline": []}`, http.StatusNotFound, "not_found"},
		{"POST", "/api/v1/publications", `[]`, http.StatusBadRequest, "bad_query"},
		{"POST", "/api/v1/reviews/abc/reject", "", http.StatusBadRequest, "bad_query"},
		// legacy aliases speak the same envelope
		{"GET", "/api/search?q=", "", http.StatusBadRequest, "bad_query"},
		{"GET", "/api/publications/nope", "", http.StatusNotFound, "not_found"},
	}
	for _, c := range cases {
		var rec *httptest.ResponseRecorder
		var body map[string]any
		if c.method == "GET" {
			rec, body = get(t, s, c.path)
		} else {
			rec, body = postJSON(t, s, c.path, c.body)
		}
		if rec.Code != c.status {
			t.Fatalf("%s %s = %d, want %d", c.method, c.path, rec.Code, c.status)
		}
		if body["error"] == nil || body["error"] == "" {
			t.Fatalf("%s %s: envelope missing error: %v", c.method, c.path, body)
		}
		if body["code"] != c.code {
			t.Fatalf("%s %s: code = %v, want %q", c.method, c.path, body["code"], c.code)
		}
		id, _ := body["request_id"].(string)
		if id == "" {
			t.Fatalf("%s %s: envelope missing request_id: %v", c.method, c.path, body)
		}
		if hdr := rec.Header().Get("X-Request-ID"); hdr != id {
			t.Fatalf("%s %s: header id %q != envelope id %q", c.method, c.path, hdr, id)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s, _ := testServer(t)
	// server-generated ids are unique per request
	rec1, _ := get(t, s, "/api/v1/stats")
	rec2, _ := get(t, s, "/api/v1/stats")
	id1, id2 := rec1.Header().Get("X-Request-ID"), rec2.Header().Get("X-Request-ID")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Fatalf("ids = %q, %q: want distinct non-empty", id1, id2)
	}

	// client-supplied ids are honored...
	req := httptest.NewRequest(http.MethodGet, "/api/v1/publications/nope", nil)
	req.Header.Set("X-Request-ID", "trace-42.a_b")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "trace-42.a_b" {
		t.Fatalf("echoed id = %q", got)
	}
	if !strings.Contains(rec.Body.String(), `"request_id":"trace-42.a_b"`) {
		t.Fatalf("envelope missing client id: %s", rec.Body.String())
	}

	// ...but sanitized: header/JSON metacharacters are stripped
	req = httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil)
	req.Header.Set("X-Request-ID", `ev il"id<>`+"\t{}")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "evilid" {
		t.Fatalf("sanitized id = %q, want %q", got, "evilid")
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	s, reg := liteServer(t, Config{MaxInflightSearch: 1, RetryAfter: 3 * time.Second})

	// saturate the search class from the outside (high priority fills
	// the whole capacity, so every tenant tier below is saturated too)
	if ok, _ := s.adms[classSearch].acquire(PriorityHigh); !ok {
		t.Fatal("could not pre-fill the search class")
	}
	rec, body := get(t, s, "/api/v1/search?q=vaccine")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if body["code"] != "overloaded" {
		t.Fatalf("code = %v, want overloaded", body["code"])
	}
	if got := reg.Counter("requests_shed").Value(); got != 1 {
		t.Fatalf("requests_shed = %d, want 1", got)
	}

	// other classes are unaffected by search saturation
	if rec, _ := get(t, s, "/api/v1/stats"); rec.Code != http.StatusOK {
		t.Fatalf("light route shed alongside search = %d", rec.Code)
	}

	// freeing the slot restores service
	s.adms[classSearch].release()
	if rec, _ := get(t, s, "/api/v1/search?q=vaccine"); rec.Code != http.StatusOK {
		t.Fatalf("post-drain search = %d", rec.Code)
	}

	// the shed counter is visible on the metrics surface
	_, snap := get(t, s, "/api/v1/metrics")
	counters, _ := snap["counters"].(map[string]any)
	if counters["requests_shed"].(float64) != 1 {
		t.Fatalf("metrics requests_shed = %v", counters["requests_shed"])
	}
	gauges, _ := snap["gauges"].(map[string]any)
	if _, ok := gauges["inflight_search"]; !ok {
		t.Fatalf("metrics missing inflight_search gauge: %v", snap["gauges"])
	}
}

func TestDeadlineExceededEnvelope(t *testing.T) {
	s, reg := liteServer(t, Config{
		SearchTimeout:    time.Nanosecond,
		AggregateTimeout: time.Nanosecond,
	})
	rec, body := get(t, s, "/api/v1/search?q=vaccine")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired search = %d (%v), want 504", rec.Code, body)
	}
	if body["code"] != "deadline_exceeded" {
		t.Fatalf("code = %v", body["code"])
	}
	rec, body = postJSON(t, s, "/api/v1/aggregate",
		`{"pipeline": [{"$match": {"title": {"$regex": "covid"}}}]}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired aggregate = %d (%v), want 504", rec.Code, body)
	}
	if body["code"] != "deadline_exceeded" {
		t.Fatalf("aggregate code = %v", body["code"])
	}
	if got := reg.Counter("deadline_exceeded").Value(); got < 2 {
		t.Fatalf("deadline_exceeded = %d, want >= 2", got)
	}
	// expired queries must not poison the query cache
	if st := s.sys.Search.CacheStats(); st.Entries != 0 {
		t.Fatalf("expired query cached %d entries", st.Entries)
	}
}

func TestCancelledClientEnvelope(t *testing.T) {
	s, reg := liteServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the handler ran
	req := httptest.NewRequest(http.MethodGet, "/api/v1/search?q=vaccine", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled search = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if !strings.Contains(rec.Body.String(), `"code":"cancelled"`) {
		t.Fatalf("envelope = %s", rec.Body.String())
	}
	if got := reg.Counter("requests_cancelled").Value(); got != 1 {
		t.Fatalf("requests_cancelled = %d, want 1", got)
	}
	if st := s.sys.Search.CacheStats(); st.Entries != 0 {
		t.Fatalf("cancelled query cached %d entries", st.Entries)
	}
}

// TestLifecycleConcurrencySmoke hammers the admission-controlled search
// route from many goroutines; under -race this exercises the semaphore,
// gauge, and counter plumbing for data races. Every response must be
// either a success or a well-formed shed.
func TestLifecycleConcurrencySmoke(t *testing.T) {
	s, reg := liteServer(t, Config{MaxInflightSearch: 2})
	var wg sync.WaitGroup
	var bad atomic32
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				req := httptest.NewRequest(http.MethodGet, "/api/v1/search?q=vaccine", nil)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
					bad.inc()
				}
			}
		}()
	}
	wg.Wait()
	if n := bad.load(); n != 0 {
		t.Fatalf("%d responses were neither 200 nor 429", n)
	}
	if g := reg.Gauge("inflight_search").Value(); g != 0 {
		t.Fatalf("inflight_search = %d after drain, want 0", g)
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) inc() { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic32) load() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
