package api

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"covidkg/internal/metrics"
)

// recoverMiddleware converts a handler panic into a 500 JSON error and
// a logged stack trace, so one bad request cannot kill the whole
// service. If the handler already started writing the response, the
// status line is gone; the panic is still logged and the connection
// dropped rather than the process.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // net/http's own abort signal; let it through
				}
				log.Printf("api: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeErr(w, r, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter records the status code a handler wrote (200 if it never
// called WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// metricsMiddleware records request counts, status-class counts, and a
// whole-request latency histogram into the server's registry. It wraps
// the recover middleware so even recovered panics show up as 500s.
func metricsMiddleware(reg *metrics.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		reg.Counter("http.requests").Inc()
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		reg.Counter("http.status." + strconv.Itoa(status/100) + "xx").Inc()
		reg.Histogram("http.latency").Observe(time.Since(start))
	})
}
