package api

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
)

// recoverMiddleware converts a handler panic into a 500 JSON error and
// a logged stack trace, so one bad request cannot kill the whole
// service. If the handler already started writing the response, the
// status line is gone; the panic is still logged and the connection
// dropped rather than the process.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // net/http's own abort signal; let it through
				}
				log.Printf("api: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeErr(w, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}
