package api

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"covidkg/internal/breaker"
	"covidkg/internal/core"
	"covidkg/internal/docstore"
	"covidkg/internal/failpoint"
	"covidkg/internal/jsondoc"
	"covidkg/internal/metrics"
)

// chaosServer builds a server over a replicated 4-shard system wired
// with a failpoint registry, seeded with 40 publications (ids c00..c39,
// all matching "covid") so every shard holds several documents.
func chaosServer(t *testing.T) (*Server, *core.System, *failpoint.Registry, *metrics.Registry) {
	t.Helper()
	fp := failpoint.New(1)
	fp.SetSleeper(func(time.Duration) {})
	reg := metrics.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Failpoints = fp
	cfg.Metrics = reg
	cfg.Breaker = breaker.Config{Threshold: 2, Cooldown: time.Millisecond}
	cfg.HedgeDelay = time.Millisecond
	sys := core.NewSystem(cfg)
	var docs []jsondoc.Doc
	for i := 0; i < 40; i++ {
		docs = append(docs, jsondoc.Doc{
			"_id":       fmt.Sprintf("c%02d", i),
			"title":     fmt.Sprintf("Covid study %d", i),
			"abstract":  "Covid results obtained with the standard assay.",
			"body_text": "Body text about covid outcomes.",
			"journal":   "Test Journal",
		})
	}
	if err := sys.IngestDocs(docs).Err(); err != nil {
		t.Fatal(err)
	}
	return NewServerWith(sys, Config{Metrics: reg}), sys, fp, reg
}

// darkShard downs every replica of the shard owning c00 and returns its
// index plus one id that lives there.
func darkShard(sys *core.System, fp *failpoint.Registry) (int, string) {
	si := sys.Pubs.ShardOfID("c00")
	fp.Set(fmt.Sprintf("shard%d/*", si), failpoint.Rule{Down: true})
	return si, "c00"
}

// TestChaosInvariant is the issue's acceptance scenario end to end: with
// one of four shards fully dark, search returns 200 with partial
// results; after the failpoint clears, the half-open probe restores the
// shard and resync leaves the replicas CRC-identical.
func TestChaosInvariant(t *testing.T) {
	s, sys, fp, reg := chaosServer(t)

	// healthy baseline: full results, ready, no partial marker
	rec, body := get(t, s, "/api/v1/search?q=covid")
	if rec.Code != http.StatusOK || body["Total"].(float64) != 40 {
		t.Fatalf("baseline search = %d total %v", rec.Code, body["Total"])
	}
	if rec.Header().Get("X-Partial-Results") != "" {
		t.Fatal("healthy search carries X-Partial-Results")
	}
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy readyz = %d", rec.Code)
	}

	// one of four shards goes fully dark; query a term not yet cached
	// (the baseline "covid" page is legitimately served from cache)
	si, darkID := darkShard(sys, fp)
	rec, body = get(t, s, "/api/v1/search?q=study")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search = %d, want 200 (never 500)", rec.Code)
	}
	if body["partial"] != true {
		t.Fatalf("degraded search body missing partial: %v", body)
	}
	if rec.Header().Get("X-Partial-Results") != "true" {
		t.Fatal("degraded search missing X-Partial-Results header")
	}
	miss, _ := body["missing_shards"].([]any)
	if len(miss) != 1 || int(miss[0].(float64)) != si {
		t.Fatalf("missing_shards = %v, want [%d]", miss, si)
	}
	if total := body["Total"].(float64); total >= 40 || total <= 0 {
		t.Fatalf("degraded Total = %v, want partial coverage", total)
	}

	// liveness stays green, readiness goes red with per-shard detail
	if rec, _ := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("liveness flapped on shard outage: %d", rec.Code)
	}
	rec, body = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("readyz during outage = %d %v, want 503 degraded", rec.Code, body["status"])
	}
	shards, _ := body["shards"].([]any)
	if len(shards) != 4 {
		t.Fatalf("readyz shards = %v", body["shards"])
	}
	dark := shards[si].(map[string]any)
	if dark["ready"] != false {
		t.Fatalf("dark shard %d reported ready: %v", si, dark)
	}

	// point lookups on the dark shard answer 503, not 404 or 500
	rec, body = get(t, s, "/api/v1/publications/"+darkID)
	if rec.Code != http.StatusServiceUnavailable || body["code"] != "unavailable" {
		t.Fatalf("dark-shard lookup = %d %v, want 503 unavailable", rec.Code, body["code"])
	}

	// recovery: the failpoint clears, the breaker cooldown elapses, and
	// half-open probes bring the replicas back into service
	fp.ClearAll()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 8; i++ {
		get(t, s, "/api/v1/publications/"+darkID)
	}
	rec, _ = get(t, s, "/api/v1/publications/"+darkID)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered lookup = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d", rec.Code)
	}

	// resync leaves every replica byte-identical (CRC-verified)
	if rep := sys.Resync(); !rep.Identical {
		t.Fatalf("resync left divergence: %+v", rep)
	}
	if !sys.Store.ReplicasIdentical() {
		t.Fatal("replica checksums differ after resync")
	}

	// the earlier partial page must not have been cached: the same query
	// now serves the full corpus
	rec, body = get(t, s, "/api/v1/search?q=study")
	if rec.Code != http.StatusOK || body["partial"] == true {
		t.Fatalf("post-recovery search = %d partial=%v", rec.Code, body["partial"])
	}
	if body["Total"].(float64) != 40 {
		t.Fatalf("post-recovery Total = %v, want 40", body["Total"])
	}

	// a single-replica failure (unlike the whole-shard outage above,
	// which rejects writes outright) leaves a stale replica behind:
	// quorum writes land on the two healthy copies, and resync must
	// repair the third once it returns
	fp.Set(docstore.ReplicaTarget(si, 1), failpoint.Rule{Down: true})
	var lateID string
	for i := 0; ; i++ {
		id := fmt.Sprintf("late-%d", i)
		if sys.Pubs.ShardOfID(id) == si {
			lateID = id
			break
		}
	}
	if err := sys.IngestDocs([]jsondoc.Doc{{"_id": lateID, "title": "Late covid arrival"}}).Err(); err != nil {
		t.Fatalf("quorum write with one replica down failed: %v", err)
	}
	fp.ClearAll()
	if rep := sys.Resync(); rep.Resynced != 1 || !rep.Identical {
		t.Fatalf("resync after stale replica = %+v, want 1 resynced identical", rep)
	}

	// the robustness counters saw the incident
	if reg.Counter("breaker_open").Value() < 1 {
		t.Fatal("breaker_open never incremented")
	}
	if reg.Counter("partial_responses").Value() < 1 {
		t.Fatal("partial_responses never incremented")
	}
	if reg.Counter("replica_resyncs").Value() < 1 {
		t.Fatal("replica_resyncs never incremented")
	}
}

// TestRetryAfterClampedToWholeSecond pins the regression where a
// sub-second RetryAfter config rendered "Retry-After: 0" — an
// immediate-retry invitation — on shed responses.
func TestRetryAfterClampedToWholeSecond(t *testing.T) {
	s, _ := liteServer(t, Config{MaxInflightSearch: 1, RetryAfter: 100 * time.Millisecond})
	if ok, _ := s.adms[classSearch].acquire(PriorityHigh); !ok {
		t.Fatal("could not pre-fill the search class")
	}
	defer s.adms[classSearch].release()
	rec, _ := get(t, s, "/api/v1/search?q=vaccine")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (sub-second config must clamp up)", ra)
	}
}
