package api

import (
	"html/template"
	"net/http"

	"covidkg/internal/kg"
)

// indexTmpl is the minimal interactive browser: a search box over the
// three engines and a collapsible KG tree — the terminal-grade analogue
// of the covidkg.org front-end.
var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>COVIDKG</title><style>
body{font-family:sans-serif;margin:2rem;max-width:60rem}
li{margin:.15rem 0} .papers{color:#777;font-size:.85em}
code{background:#eee;padding:0 .3em}
</style></head><body>
<h1>COVIDKG</h1>
<p>{{.Pubs}} publications stored · {{.Nodes}} knowledge-graph nodes</p>
<h2>Search API</h2>
<ul>
<li><code>GET /api/search?engine=all&amp;q=masks</code> — all publication fields</li>
<li><code>GET /api/search?engine=tables&amp;q=ventilators</code> — table data</li>
<li><code>GET /api/search?engine=fields&amp;title=...&amp;abstract=...&amp;caption=...</code></li>
<li><code>GET /api/kg/search?q=vaccines</code> — KG nodes with paths</li>
<li><code>GET /api/models</code> — released pre-trained models</li>
</ul>
<h2>Knowledge Graph</h2>
{{.Tree}}
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	tree := s.renderTree()
	data := struct {
		Pubs  int
		Nodes int
		Tree  template.HTML
	}{s.sys.Pubs.Count(), s.sys.Graph.Size(), template.HTML(tree)}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, data)
}

// renderTree builds a nested <ul> of the KG (depth-limited to keep pages
// small on large graphs).
func (s *Server) renderTree() string {
	const maxDepth = 4
	var out []byte
	depthOpen := 0
	s.sys.Graph.Walk(func(n kg.Node, depth int) bool {
		if depth > maxDepth {
			return true
		}
		for depthOpen > depth {
			out = append(out, "</ul>"...)
			depthOpen--
		}
		for depthOpen < depth {
			out = append(out, "<ul>"...)
			depthOpen++
		}
		out = append(out, "<li>"...)
		out = append(out, template.HTMLEscapeString(n.Label)...)
		if len(n.Papers) > 0 {
			out = append(out, (" <span class=papers>(" +
				template.HTMLEscapeString(itoa(len(n.Papers))) + " papers)</span>")...)
		}
		out = append(out, "</li>"...)
		return true
	})
	for depthOpen > 0 {
		out = append(out, "</ul>"...)
		depthOpen--
	}
	return string(out)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
