package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"covidkg/internal/cord19"
	"covidkg/internal/core"
	"covidkg/internal/kg"
)

func testServer(t *testing.T) (*Server, *core.System) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.TrainTables = 40
	cfg.W2V.Epochs = 2
	cfg.VocabSize = 1000
	sys := core.NewSystem(cfg)
	g := cord19.NewGenerator(4)
	if err := sys.IngestPublications(g.Corpus(40)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TrainModels(); err != nil {
		t.Fatal(err)
	}
	sys.BuildKG()
	return NewServer(sys), sys
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	ct := rec.Header().Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
	}
	return rec, body
}

func TestHealthz(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v", rec.Code, body)
	}
}

func TestStats(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	if body["publications"].(float64) != 40 {
		t.Fatalf("pubs = %v", body["publications"])
	}
	if body["kg_nodes"].(float64) < 15 {
		t.Fatalf("kg_nodes = %v", body["kg_nodes"])
	}
}

func TestSearchEndpoints(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{
		"/api/search?q=vaccine",
		"/api/search?engine=all&q=vaccine",
		"/api/search?engine=tables&q=vaccine&page=1",
		"/api/search?engine=fields&title=vaccine",
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %v", path, rec.Code, body)
		}
		if _, ok := body["Total"]; !ok {
			t.Fatalf("%s: missing Total: %v", path, body)
		}
	}
	// errors
	rec, _ := get(t, s, "/api/search?engine=warp&q=x")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown engine = %d", rec.Code)
	}
	rec, _ = get(t, s, "/api/search?q=")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty query = %d", rec.Code)
	}
}

func TestPublicationEndpoint(t *testing.T) {
	s, sys := testServer(t)
	id := sys.Pubs.IDs()[0]
	rec, body := get(t, s, "/api/publications/"+id)
	if rec.Code != http.StatusOK || body["title"] == "" {
		t.Fatalf("pub = %d %v", rec.Code, body)
	}
	rec, _ = get(t, s, "/api/publications/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing pub = %d", rec.Code)
	}
}

func TestGraphEndpoints(t *testing.T) {
	s, sys := testServer(t)
	rec, body := get(t, s, "/api/kg")
	if rec.Code != http.StatusOK || body["root"] == nil {
		t.Fatalf("kg = %d %v", rec.Code, body)
	}
	rec, _ = get(t, s, "/api/kg/search?q=vaccines")
	if rec.Code != http.StatusOK {
		t.Fatalf("kg search = %d", rec.Code)
	}
	rec, _ = get(t, s, "/api/kg/search?q=")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty kg search = %d", rec.Code)
	}
	root := sys.Graph.RootID()
	rec, body = get(t, s, "/api/kg/node/"+root)
	if rec.Code != http.StatusOK || body["node"] == nil || body["path"] == nil {
		t.Fatalf("node = %d %v", rec.Code, body)
	}
	rec, _ = get(t, s, "/api/kg/node/"+root+"/children")
	if rec.Code != http.StatusOK {
		t.Fatalf("children = %d", rec.Code)
	}
	rec, _ = get(t, s, "/api/kg/node/bogus")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("bogus node = %d", rec.Code)
	}
}

func TestReviewEndpoints(t *testing.T) {
	s, sys := testServer(t)
	res := sys.Fuser.Fuse(&kg.Subtree{
		Label: "Novel thing",
		Children: []*kg.Subtree{
			{Label: "Mid", Children: []*kg.Subtree{{Label: "Leaf"}}},
		},
	})
	rec, _ := get(t, s, "/api/reviews")
	if rec.Code != http.StatusOK {
		t.Fatalf("reviews = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "Novel thing") {
		t.Fatalf("review body = %s", rec.Body.String())
	}

	post := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, nil)
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}
	// missing target
	if w := post("/api/reviews/" + itoa(res.ReviewID) + "/approve"); w.Code != http.StatusBadRequest {
		t.Fatalf("no target = %d", w.Code)
	}
	// bad target
	if w := post("/api/reviews/" + itoa(res.ReviewID) + "/approve?target=zzz"); w.Code != http.StatusNotFound {
		t.Fatalf("bad target = %d", w.Code)
	}
	// good approve
	if w := post("/api/reviews/" + itoa(res.ReviewID) + "/approve?target=" + sys.Graph.RootID()); w.Code != http.StatusOK {
		t.Fatalf("approve = %d %s", w.Code, w.Body.String())
	}
	if len(sys.Graph.Search("leaf")) == 0 {
		t.Fatal("approved subtree missing")
	}
	// reject flow
	res2 := sys.Fuser.Fuse(&kg.Subtree{Label: "Another", Children: []*kg.Subtree{
		{Label: "m", Children: []*kg.Subtree{{Label: "l"}}},
	}})
	if w := post("/api/reviews/" + itoa(res2.ReviewID) + "/reject"); w.Code != http.StatusOK {
		t.Fatalf("reject = %d", w.Code)
	}
	if w := post("/api/reviews/abc/reject"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad id = %d", w.Code)
	}
}

func TestModelEndpoints(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/api/models")
	if rec.Code != http.StatusOK {
		t.Fatalf("models = %d", rec.Code)
	}
	names, _ := body["models"].([]any)
	if len(names) == 0 {
		t.Fatal("no models listed")
	}
	first := names[0].(string)
	rec, _ = get(t, s, "/api/models/"+first)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("model download = %d", rec.Code)
	}
	rec, _ = get(t, s, "/api/models/none")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing model = %d", rec.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := testServer(t)
	rec, _ := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	html := rec.Body.String()
	for _, want := range []string{"COVIDKG", "Knowledge Graph", "COVID-19"} {
		if !strings.Contains(html, want) {
			t.Fatalf("index missing %q", want)
		}
	}
	rec, _ = get(t, s, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}
}

func postJSON(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

func TestAggregateEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/aggregate", `{
		"pipeline": [
			{"$match": {"title": {"$regex": "(?i)covid"}}},
			{"$project": {"title": 1}},
			{"$sort": {"title": 1}},
			{"$limit": 5}
		]
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("aggregate = %d: %v", rec.Code, body)
	}
	results, _ := body["results"].([]any)
	if len(results) == 0 || len(results) > 5 {
		t.Fatalf("results = %d", len(results))
	}
	first := results[0].(map[string]any)
	if first["title"] == nil || first["abstract"] != nil {
		t.Fatalf("projection wrong: %v", first)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/aggregate", `{
		"pipeline": [{"$group": {"_id": "$topic", "n": {"$sum": 1}}}]
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("group = %d: %v", rec.Code, body)
	}
	results, _ := body["results"].([]any)
	total := 0.0
	for _, r := range results {
		total += r.(map[string]any)["n"].(float64)
	}
	if int(total) != 40 {
		t.Fatalf("group counts sum to %v, want 40", total)
	}
}

func TestAggregateErrors(t *testing.T) {
	s, _ := testServer(t)
	if rec, _ := postJSON(t, s, "/api/aggregate", `{"pipeline": [{"$warp": 1}]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad stage = %d", rec.Code)
	}
	if rec, _ := postJSON(t, s, "/api/aggregate", `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d", rec.Code)
	}
	if rec, _ := postJSON(t, s, "/api/aggregate", `{"collection": "nope", "pipeline": []}`); rec.Code != http.StatusNotFound {
		t.Fatalf("missing collection = %d", rec.Code)
	}
}

func TestAggregateDefaultLimit(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/aggregate", `{"pipeline": []}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("empty pipeline = %d", rec.Code)
	}
	if n := body["n"].(float64); n != 40 { // 40 docs < default cap 100
		t.Fatalf("n = %v", n)
	}
}

func TestIngestEndpoint(t *testing.T) {
	s, sys := testServer(t)
	before := sys.Pubs.Count()
	sys.BuildKG() // mark existing pubs processed
	body := `[{
		"_id": "web-new-1",
		"title": "Remdesivir outcomes in ICU cohorts",
		"abstract": "New evidence on antiviral therapy.",
		"body_text": "Trial details.",
		"journal": "Web Source",
		"publish_date": "2022-05-01",
		"tables": [{"caption": "Table 1: Drugs",
			"rows": [["Drug", "Outcome measure"], ["Remdesivir", "Recovery time"]],
			"header_rows": [0], "n_rows": 2, "n_cols": 2}]
	}]`
	rec, resp := postJSON(t, s, "/api/publications", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %v", rec.Code, resp)
	}
	if resp["ingested"].(float64) != 1 || resp["tables"].(float64) != 1 {
		t.Fatalf("refresh stats: %v", resp)
	}
	if sys.Pubs.Count() != before+1 {
		t.Fatalf("count = %d", sys.Pubs.Count())
	}
	// immediately searchable
	rec, page := get(t, s, "/api/search?q=remdesivir")
	if rec.Code != http.StatusOK || page["Total"].(float64) < 1 {
		t.Fatalf("new doc not searchable: %v", page)
	}
	// errors
	if rec, _ := postJSON(t, s, "/api/publications", `[]`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty ingest = %d", rec.Code)
	}
	if rec, _ := postJSON(t, s, "/api/publications", `{"not": "an array"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("non-array ingest = %d", rec.Code)
	}
	// duplicate id rejected
	if rec, _ := postJSON(t, s, "/api/publications", body); rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate ingest = %d", rec.Code)
	}
}

func TestTableMatchesEndpoint(t *testing.T) {
	s, sys := testServer(t)
	// find a publication with a table and a cell term
	var id, term string
	for _, pid := range sys.Pubs.IDs() {
		d, _ := sys.Pubs.Get(pid)
		tables := d.GetArray("tables")
		if len(tables) == 0 {
			continue
		}
		td := tables[0].(map[string]any)
		rows, _ := td["rows"].([]any)
		if len(rows) == 0 {
			continue
		}
		cells, _ := rows[0].([]any)
		for _, cv := range cells {
			if sstr, ok := cv.(string); ok && len(sstr) > 3 {
				id, term = pid, sstr
				break
			}
		}
		if id != "" {
			break
		}
	}
	if id == "" {
		t.Skip("no suitable table in corpus")
	}
	rec, body := get(t, s, "/api/publications/"+id+"/tables?q="+term)
	if rec.Code != http.StatusOK {
		t.Fatalf("table matches = %d: %v", rec.Code, body)
	}
	tables, _ := body["tables"].([]any)
	if len(tables) == 0 {
		t.Fatalf("no table matches for %q in %s", term, id)
	}
	if rec, _ := get(t, s, "/api/publications/nope/tables?q=x"); rec.Code != http.StatusNotFound {
		t.Fatalf("missing pub = %d", rec.Code)
	}
	if rec, _ := get(t, s, "/api/publications/"+id+"/tables?q="); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty query = %d", rec.Code)
	}
}

func TestPubNodesEndpoint(t *testing.T) {
	s, sys := testServer(t)
	// find a publication that contributed to the graph
	var pid string
	for _, id := range sys.Pubs.IDs() {
		if len(sys.Graph.NodesByPaper(id)) > 0 {
			pid = id
			break
		}
	}
	if pid == "" {
		t.Skip("no publication contributed to the KG in this corpus")
	}
	rec, body := get(t, s, "/api/publications/"+pid+"/nodes")
	if rec.Code != http.StatusOK {
		t.Fatalf("pub nodes = %d", rec.Code)
	}
	nodes, _ := body["nodes"].([]any)
	if len(nodes) == 0 {
		t.Fatal("no nodes returned")
	}
	if rec, _ := get(t, s, "/api/publications/nope/nodes"); rec.Code != http.StatusNotFound {
		t.Fatalf("missing pub = %d", rec.Code)
	}
}

// TestSearchZeroHitsStillOnePage: a valid query with no matches is a
// 200 with one empty page, never NumPages = 0 (UIs divide by it).
func TestSearchZeroHitsStillOnePage(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/api/search?q=xylophone")
	if rec.Code != http.StatusOK {
		t.Fatalf("zero-hit search = %d: %v", rec.Code, body)
	}
	if body["Total"].(float64) != 0 {
		t.Fatalf("Total = %v", body["Total"])
	}
	if body["NumPages"].(float64) < 1 {
		t.Fatalf("NumPages = %v, want >= 1", body["NumPages"])
	}
}

// TestSearchErrorStatusClasses: bad input is the caller's 400; only
// internal failures may 500.
func TestSearchErrorStatusClasses(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{
		"/api/search?q=",              // empty query
		"/api/search?q=the+of+and",    // stopwords only
		"/api/search?engine=fields",   // all fields empty
		"/api/search?engine=warp&q=x", // unknown engine
	} {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s = %d (%v), want 400", path, rec.Code, body)
		}
	}
	// good input never maps to 4xx
	if rec, body := get(t, s, "/api/search?q=vaccine"); rec.Code != http.StatusOK {
		t.Fatalf("valid query = %d: %v", rec.Code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	// generate some traffic so counters and histograms are populated
	get(t, s, "/api/search?q=vaccine")
	get(t, s, "/api/search?q=vaccine")
	rec, body := get(t, s, "/api/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	counters, _ := body["counters"].(map[string]any)
	if counters == nil {
		t.Fatalf("no counters in %v", body)
	}
	if counters["http.requests"].(float64) < 2 {
		t.Fatalf("http.requests = %v", counters["http.requests"])
	}
	if counters["search.queries"].(float64) < 2 {
		t.Fatalf("search.queries = %v", counters["search.queries"])
	}
	hists, _ := body["histograms"].(map[string]any)
	if hists == nil || hists["http.latency"] == nil {
		t.Fatalf("missing http.latency histogram: %v", body["histograms"])
	}
	if hists["search.stage.topk"] == nil && hists["search.stage.score"] == nil {
		t.Fatalf("missing per-stage timing: %v", body["histograms"])
	}
	cache, _ := body["search_cache"].(map[string]any)
	if cache == nil {
		t.Fatalf("missing search_cache stats: %v", body)
	}
	if cache["hits"].(float64) < 1 {
		t.Fatalf("repeat query did not register a cache hit: %v", cache)
	}
}

// postNDJSON posts a newline-delimited JSON body.
func postNDJSON(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &out)
	return rec, out
}

// TestBulkIngestPartialSuccess pins the per-document ingest contract: a
// batch with a bad document in the middle no longer rolls the response
// up into one error after silently storing everything before it. The
// response reports each document's outcome and the good ones land.
func TestBulkIngestPartialSuccess(t *testing.T) {
	s, sys := testServer(t)
	before := sys.Pubs.Count()
	body := `[
		{"_id": "bulk-ok-1", "title": "Bulk zymurgology outcomes"},
		{"_id": "bulk-ok-1", "title": "Duplicate id, must fail"},
		{"_id": "bulk-ok-2", "title": "Bulk zymurgology continued"}
	]`
	rec, resp := postJSON(t, s, "/api/v1/publications", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial ingest = %d: %v", rec.Code, resp)
	}
	if resp["ingested"].(float64) != 2 || resp["failed"].(float64) != 1 {
		t.Fatalf("counts: %v", resp)
	}
	results := resp["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	second := results[1].(map[string]any)
	if second["index"].(float64) != 1 || second["error"] == nil {
		t.Fatalf("failed doc not reported: %v", second)
	}
	if sys.Pubs.Count() != before+2 {
		t.Fatalf("count = %d, want %d", sys.Pubs.Count(), before+2)
	}
	rec, page := get(t, s, "/api/v1/search?q=zymurgology")
	if rec.Code != http.StatusOK || page["Total"].(float64) != 2 {
		t.Fatalf("ingested docs not searchable: %v", page)
	}
}

// TestBulkIngestNDJSONStreaming: the newline-delimited framing decodes
// incrementally (batches, not one big array) and reports the same
// per-document results.
func TestBulkIngestNDJSONStreaming(t *testing.T) {
	s, sys := testServer(t)
	before := sys.Pubs.Count()
	var b strings.Builder
	for i := 0; i < 600; i++ { // > 2 ingest batches
		fmt.Fprintf(&b, "{\"_id\": \"nd-%03d\", \"title\": \"Streamed niclosamide doc %d\"}\n", i, i)
	}
	rec, resp := postNDJSON(t, s, "/api/v1/publications", b.String())
	if rec.Code != http.StatusOK {
		t.Fatalf("ndjson ingest = %d: %v", rec.Code, resp)
	}
	if resp["ingested"].(float64) != 600 || resp["failed"].(float64) != 0 {
		t.Fatalf("counts: %v", resp)
	}
	// per-doc indexes must be global across batches, not per-batch
	results := resp["results"].([]any)
	last := results[len(results)-1].(map[string]any)
	if last["index"].(float64) != 599 || last["id"] != "nd-599" {
		t.Fatalf("last result: %v", last)
	}
	if sys.Pubs.Count() != before+600 {
		t.Fatalf("count = %d, want %d", sys.Pubs.Count(), before+600)
	}

	// all-failed body (every id a duplicate) answers 400, nothing stored
	rec, resp = postNDJSON(t, s, "/api/v1/publications",
		"{\"_id\": \"nd-000\", \"title\": \"dup\"}\n{\"_id\": \"nd-001\", \"title\": \"dup\"}\n")
	if rec.Code != http.StatusBadRequest || resp["code"] != "bad_query" {
		t.Fatalf("all-failed ingest = %d %v", rec.Code, resp)
	}
	if sys.Pubs.Count() != before+600 {
		t.Fatalf("all-failed ingest stored docs: %d", sys.Pubs.Count())
	}

	// malformed tail: everything before it lands, truncation is flagged
	rec, resp = postNDJSON(t, s, "/api/v1/publications",
		"{\"_id\": \"nd-tail\", \"title\": \"Good doc\"}\n{not json\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("truncated ingest = %d: %v", rec.Code, resp)
	}
	if resp["truncated"] != true || resp["ingested"].(float64) != 1 {
		t.Fatalf("truncation not reported: %v", resp)
	}
}
