package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// getTenant issues a request carrying an X-Tenant-ID header.
func getTenant(t *testing.T, s *Server, tenant, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if tenant != "" {
		req.Header.Set("X-Tenant-ID", tenant)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := map[string]any{}
	decodeBody(t, rec, &body)
	return rec, body
}

// decodeBody best-effort decodes a JSON object body (some routes return
// arrays or non-JSON; tenant tests only inspect object envelopes).
func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, into *map[string]any) {
	t.Helper()
	_ = json.Unmarshal(rec.Body.Bytes(), into)
}

func TestTokenBucketRefillAndWait(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(2, 4, now) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		ok, _, _, _ := b.take(now)
		if !ok {
			t.Fatalf("take %d within burst failed", i)
		}
	}
	ok, wait, remaining, reset := b.take(now)
	if ok {
		t.Fatal("take beyond burst succeeded")
	}
	if want := 500 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v", wait, want)
	}
	if remaining != 0 {
		t.Fatalf("remaining = %d, want 0", remaining)
	}
	// bucket refills fully in burst/rate = 2s
	if got, want := reset.Sub(now), 2*time.Second; got != want {
		t.Fatalf("reset in %v, want %v", got, want)
	}

	// half a second later exactly one token is back
	now = now.Add(500 * time.Millisecond)
	if ok, _, _, _ := b.take(now); !ok {
		t.Fatal("take after refill failed")
	}
	if ok, _, _, _ := b.take(now); ok {
		t.Fatal("second take after single-token refill succeeded")
	}
}

func TestRateLimitedResponseHeadersAndRetryAfter(t *testing.T) {
	clock := time.Unix(5000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	s, reg := liteServer(t, Config{
		Now: now,
		Tenants: map[string]TenantLimits{
			// 0.2 tokens/s: the refill wait for the next token is 5s,
			// which must surface verbatim (ceil) in Retry-After rather
			// than the static class-level RetryAfter below
			"slow": {Priority: PriorityStandard, RatePerSec: 0.2, Burst: 1},
		},
		RetryAfter: time.Second,
	})

	rec, _ := getTenant(t, s, "slow", "/api/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("first request = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Tenant-ID"); got != "slow" {
		t.Fatalf("X-Tenant-ID = %q", got)
	}
	if got := rec.Header().Get("X-RateLimit-Limit"); got != "1" {
		t.Fatalf("X-RateLimit-Limit = %q, want 1", got)
	}
	if got := rec.Header().Get("X-RateLimit-Remaining"); got != "0" {
		t.Fatalf("X-RateLimit-Remaining = %q, want 0", got)
	}
	if rec.Header().Get("X-RateLimit-Reset") == "" {
		t.Fatal("missing X-RateLimit-Reset")
	}

	rec, body := getTenant(t, s, "slow", "/api/v1/stats")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request = %d, want 429", rec.Code)
	}
	if body["code"] != "rate_limited" {
		t.Fatalf("code = %v, want rate_limited", body["code"])
	}
	// the bucket needs 5s for the next token; the static config says 1s —
	// the bucket must win
	if ra := rec.Header().Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After = %q, want \"5\" (token-bucket refill, not static config)", ra)
	}
	if got := reg.Counter("tenant.slow.rate_limited").Value(); got != 1 {
		t.Fatalf("tenant.slow.rate_limited = %d", got)
	}

	// advancing the clock past the refill restores service
	mu.Lock()
	clock = clock.Add(5 * time.Second)
	mu.Unlock()
	if rec, _ := getTenant(t, s, "slow", "/api/v1/stats"); rec.Code != http.StatusOK {
		t.Fatalf("post-refill request = %d", rec.Code)
	}
}

func TestQuotaExhaustionIsExact(t *testing.T) {
	s, reg := liteServer(t, Config{
		Tenants: map[string]TenantLimits{
			"metered": {Priority: PriorityHigh, Quota: 3},
		},
	})
	for i := 0; i < 3; i++ {
		if rec, _ := getTenant(t, s, "metered", "/api/v1/stats"); rec.Code != http.StatusOK {
			t.Fatalf("request %d within quota = %d", i, rec.Code)
		}
	}
	rec, body := getTenant(t, s, "metered", "/api/v1/stats")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429", rec.Code)
	}
	if body["code"] != "quota_exceeded" {
		t.Fatalf("code = %v, want quota_exceeded", body["code"])
	}
	if got := reg.Counter("tenant.metered.served").Value(); got != 3 {
		t.Fatalf("served = %d, want exactly the quota", got)
	}
	if got := reg.Counter("tenant.metered.quota_rejected").Value(); got != 1 {
		t.Fatalf("quota_rejected = %d", got)
	}
}

func TestQuotaExactUnderConcurrency(t *testing.T) {
	const quota = 16
	s, reg := liteServer(t, Config{
		MaxInflightLight: 64,
		Tenants: map[string]TenantLimits{
			"racer": {Priority: PriorityHigh, Quota: quota},
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 4*quota; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil)
			req.Header.Set("X-Tenant-ID", "racer")
			s.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	wg.Wait()
	if got := reg.Counter("tenant.racer.served").Value(); got != quota {
		t.Fatalf("served = %d, want exactly %d (quota must be race-exact)", got, quota)
	}
}

func TestPriorityAdmissionShedsLowFirst(t *testing.T) {
	// capacity 4 → ceilings low=2, standard=4, high=4
	s, reg := liteServer(t, Config{
		MaxInflightSearch: 4,
		Tenants: map[string]TenantLimits{
			"free":    {Priority: PriorityLow},
			"premium": {Priority: PriorityHigh},
		},
	})

	// fill the class to the low-priority ceiling
	for i := 0; i < 2; i++ {
		if ok, _ := s.adms[classSearch].acquire(PriorityHigh); !ok {
			t.Fatal("could not pre-fill")
		}
	}
	defer func() {
		s.adms[classSearch].release()
		s.adms[classSearch].release()
	}()

	rec, body := getTenant(t, s, "free", "/api/v1/search?q=vaccine")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("low-priority request at its ceiling = %d, want 429", rec.Code)
	}
	if body["code"] != "overloaded" {
		t.Fatalf("code = %v", body["code"])
	}
	if rec, _ := getTenant(t, s, "premium", "/api/v1/search?q=vaccine"); rec.Code != http.StatusOK {
		t.Fatalf("high-priority request above the low ceiling = %d, want 200", rec.Code)
	}

	if got := reg.Counter("requests_shed.priority.low").Value(); got != 1 {
		t.Fatalf("requests_shed.priority.low = %d", got)
	}
	if got := reg.Counter("tenant.free.shed").Value(); got != 1 {
		t.Fatalf("tenant.free.shed = %d", got)
	}
	if got := reg.Counter("admission_inversions").Value(); got != 0 {
		t.Fatalf("admission_inversions = %d, want 0", got)
	}
}

func TestAdmitterCeilingsMonotone(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 4, 8, 64, 256} {
		a := newAdmitter(capacity)
		lims := a.limits
		if lims[PriorityLow] < 1 || lims[PriorityLow] > lims[PriorityStandard] ||
			lims[PriorityStandard] > lims[PriorityHigh] || lims[PriorityHigh] != capacity {
			t.Fatalf("cap %d: ceilings %v not monotone up to capacity", capacity, lims)
		}
	}
}

func TestMetricsExposeRuntimeHealth(t *testing.T) {
	s, _ := liteServer(t, Config{})
	rec, snap := getTenant(t, s, "", "/api/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	rt, ok := snap["runtime"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing runtime block: %v", snap)
	}
	for _, key := range []string{"goroutines", "heap_inuse_bytes", "gc_pause_p99_us", "num_gc"} {
		if _, ok := rt[key]; !ok {
			t.Fatalf("runtime block missing %s: %v", key, rt)
		}
	}
	if rt["goroutines"].(float64) < 1 {
		t.Fatalf("goroutines = %v", rt["goroutines"])
	}
	gauges, _ := snap["gauges"].(map[string]any)
	if _, ok := gauges["runtime.goroutines"]; !ok {
		t.Fatalf("gauges missing runtime.goroutines: %v", gauges)
	}
}

func TestUnknownTenantFallsBackToAnonymous(t *testing.T) {
	s, _ := liteServer(t, Config{
		Tenants: map[string]TenantLimits{"known": {Priority: PriorityHigh}},
	})
	rec, _ := getTenant(t, s, "nobody-configured-this", "/api/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("unknown tenant = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Tenant-ID"); got != anonTenant {
		t.Fatalf("X-Tenant-ID = %q, want %q", got, anonTenant)
	}
	if rec.Header().Get("X-RateLimit-Limit") != "" {
		t.Fatal("anonymous traffic must not carry rate-limit headers by default")
	}
	// header-less requests land on the same anonymous state
	rec, _ = getTenant(t, s, "", "/api/v1/stats")
	if got := rec.Header().Get("X-Tenant-ID"); got != anonTenant {
		t.Fatalf("missing header X-Tenant-ID = %q", got)
	}
}
