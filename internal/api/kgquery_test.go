package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestKGQueryEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/v1/kg/query",
		`{"query": "(norm=\"vaccines\")-{1,2}->()"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %v", rec.Code, body)
	}
	paths, ok := body["paths"].([]any)
	if !ok || len(paths) < 2 {
		t.Fatalf("paths = %v", body["paths"])
	}
	for _, k := range []string{"total", "page_num", "per_page", "num_pages", "expansions"} {
		if _, ok := body[k]; !ok {
			t.Fatalf("missing %s in %v", k, body)
		}
	}
	plan, ok := body["plan"].(map[string]any)
	if !ok || plan["entry"] != "norm-index" {
		t.Fatalf("plan = %v", body["plan"])
	}
	first := paths[0].(map[string]any)
	for _, k := range []string{"nodes", "confidence", "evidence_coverage", "score"} {
		if _, ok := first[k]; !ok {
			t.Fatalf("path missing %s: %v", k, first)
		}
	}
}

func TestKGQueryParams(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/v1/kg/query",
		`{"query": "(norm=$start)->()", "params": {"start": "vaccines"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %v", rec.Code, body)
	}
	if body["total"].(float64) < 1 {
		t.Fatalf("no paths: %v", body)
	}
}

func TestKGQueryPagination(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/v1/kg/query",
		`{"query": "()-->()", "page": 1, "page_size": 3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %v", rec.Code, body)
	}
	if got := len(body["paths"].([]any)); got != 3 {
		t.Fatalf("page size = %d, want 3", got)
	}
	total := int(body["total"].(float64))
	numPages := int(body["num_pages"].(float64))
	if total <= 3 || numPages != (total+2)/3 {
		t.Fatalf("total %d num_pages %d", total, numPages)
	}
	// walking past the end answers an empty page, not an error
	rec, body = postJSON(t, s, "/api/v1/kg/query",
		`{"query": "()-->()", "page": 10000, "page_size": 3}`)
	if rec.Code != http.StatusOK || len(body["paths"].([]any)) != 0 {
		t.Fatalf("overrun page = %d %v", rec.Code, body["paths"])
	}
}

func TestKGQueryErrors(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		body string
		frag string
	}{
		{`{"query": "(norm="}`, "parse error at offset"},
		{`{"query": }`, "bad request body"},
		{`{}`, "missing query text"},
		{`{"query": "(bogus=\"x\")"}`, "unknown field"},
		{`{"query": "(norm=$nope)"}`, "unbound parameter"},
		{`{"query": "()-{0,2}->()"}`, "hop minimum"},
	}
	for _, c := range cases {
		rec, body := postJSON(t, s, "/api/v1/kg/query", c.body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", c.body, rec.Code)
		}
		if body["code"] != "bad_query" {
			t.Fatalf("%s: code = %v, want bad_query", c.body, body["code"])
		}
		if !strings.Contains(body["error"].(string), c.frag) {
			t.Fatalf("%s: error %q missing %q", c.body, body["error"], c.frag)
		}
	}
}

func TestKGQueryCancelledClient(t *testing.T) {
	s, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/kg/query",
		strings.NewReader(`{"query": "()-{1,4}-()"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	_ = json.Unmarshal(rec.Body.Bytes(), &body)
	if rec.Code != StatusClientClosedRequest || body["code"] != "cancelled" {
		t.Fatalf("cancelled query = %d %v, want 499 cancelled", rec.Code, body)
	}
}

func TestKGHypothesesEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec, body := postJSON(t, s, "/api/v1/kg/hypotheses",
		`{"from": "mRNA vaccines", "to": "Vector vaccines", "max_hops": 2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("hypotheses = %d: %v", rec.Code, body)
	}
	paths := body["paths"].([]any)
	if len(paths) == 0 {
		t.Fatalf("no hypothesis paths: %v", body)
	}
	first := paths[0].(map[string]any)
	if first["score"].(float64) <= 0 {
		t.Fatalf("unranked path: %v", first)
	}

	rec, body = postJSON(t, s, "/api/v1/kg/hypotheses",
		`{"from": "no such concept anywhere", "to": "Vaccines"}`)
	if rec.Code != http.StatusNotFound || body["code"] != "not_found" {
		t.Fatalf("unknown concept = %d %v, want 404 not_found", rec.Code, body)
	}

	rec, body = postJSON(t, s, "/api/v1/kg/hypotheses", `{"from": "", "to": ""}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty concepts = %d %v", rec.Code, body)
	}
}

func TestKGNodesResource(t *testing.T) {
	s, sys := testServer(t)
	root := sys.Graph.RootID()

	rec, body := get(t, s, "/api/v1/kg/nodes/"+root)
	if rec.Code != http.StatusOK || body["node"] == nil || body["path"] == nil {
		t.Fatalf("nodes/{id} = %d %v", rec.Code, body)
	}
	if rec.Header().Get("Deprecation") != "" {
		t.Fatalf("canonical route must not be deprecated")
	}
	if _, ok := body["children"]; ok {
		t.Fatalf("children embedded without expand")
	}

	rec, body = get(t, s, "/api/v1/kg/nodes/"+root+"?expand=children&page=1&page_size=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("expand = %d", rec.Code)
	}
	kids, ok := body["children"].(map[string]any)
	if !ok {
		t.Fatalf("children = %v", body["children"])
	}
	if got := len(kids["Results"].([]any)); got != 2 {
		t.Fatalf("children page = %d results, want 2", got)
	}
	if int(kids["Total"].(float64)) < 3 {
		t.Fatalf("children total = %v", kids["Total"])
	}

	rec, body = get(t, s, "/api/v1/kg/nodes/bogus")
	if rec.Code != http.StatusNotFound || body["code"] != "not_found" {
		t.Fatalf("bogus node = %d %v", rec.Code, body)
	}
}

func TestKGNodeDeprecatedAliases(t *testing.T) {
	s, sys := testServer(t)
	root := sys.Graph.RootID()
	for _, path := range []string{
		"/api/v1/kg/node/" + root,
		"/api/kg/node/" + root,
		"/api/v1/kg/node/" + root + "/children",
		"/api/kg/node/" + root + "/children",
	} {
		rec, _ := get(t, s, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		if rec.Header().Get("Deprecation") != "true" {
			t.Fatalf("%s missing Deprecation header", path)
		}
		if link := rec.Header().Get("Link"); !strings.Contains(link, "/api/v1/kg/nodes/") {
			t.Fatalf("%s Link = %q, want successor /api/v1/kg/nodes/", path, link)
		}
	}
	// the alias answers the same node payload as the successor
	rec, body := get(t, s, "/api/v1/kg/node/"+root)
	if rec.Code != http.StatusOK || body["node"] == nil || body["path"] == nil {
		t.Fatalf("legacy node = %d %v", rec.Code, body)
	}
	// and the children alias answers the bounded envelope
	rec, body = get(t, s, "/api/v1/kg/node/"+root+"/children?page_size=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy children = %d", rec.Code)
	}
	if got := len(body["Results"].([]any)); got != 1 {
		t.Fatalf("legacy children page = %d results, want 1", got)
	}
}

func TestKGSearchPaginated(t *testing.T) {
	s, _ := testServer(t)
	rec, body := get(t, s, "/api/v1/kg/search?q=vaccines&page_size=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("kg search = %d", rec.Code)
	}
	results, ok := body["Results"].([]any)
	if !ok {
		t.Fatalf("results = %v", body)
	}
	if len(results) > 1 {
		t.Fatalf("page_size=1 returned %d results", len(results))
	}
	total := int(body["Total"].(float64))
	if total < 1 || int(body["NumPages"].(float64)) != total {
		t.Fatalf("total %v num_pages %v", body["Total"], body["NumPages"])
	}
}

func TestKGQueryMetrics(t *testing.T) {
	s, _ := testServer(t)
	postJSON(t, s, "/api/v1/kg/query", `{"query": "(norm=\"vaccines\")->()"}`)
	postJSON(t, s, "/api/v1/kg/query", `{"query": "(((("}`)
	if got := s.met.Counter("kgquery.queries").Value(); got < 1 {
		t.Fatalf("kgquery.queries = %d", got)
	}
	if got := s.met.Counter("kgquery.parse_errors").Value(); got < 1 {
		t.Fatalf("kgquery.parse_errors = %d", got)
	}
}
