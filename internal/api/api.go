// Package api exposes the COVIDKG system over HTTP: the interactive
// knowledge-graph browse/search surface the paper's front-end uses
// (№9/10 in Figure 1) and the programmatic API releasing search,
// publications, and pre-trained models to downstream users (№11/13).
//
// The versioned surface lives under /api/v1/; the original unversioned
// /api/ paths remain as deprecated aliases (Deprecation: true). Every
// route runs inside a request lifecycle — per-route-class deadline,
// bounded in-flight admission control, and a request id that flows
// through the context into error envelopes and metrics.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"covidkg/internal/core"
	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
	"covidkg/internal/metrics"
	"covidkg/internal/pipeline"
	"covidkg/internal/search"
)

// Server wraps a core system with HTTP handlers.
type Server struct {
	sys      *core.System
	cfg      Config
	met      *metrics.Registry
	mux      *http.ServeMux
	handler  http.Handler
	idPrefix string
	adms     [numClasses]*admitter
	tenants  *tenants
}

// NewServer builds the handler tree over a (typically trained) system
// with the default lifecycle configuration.
func NewServer(sys *core.System) *Server {
	return NewServerWith(sys, DefaultConfig())
}

// NewServerWith builds the handler tree with an explicit lifecycle
// configuration; zero Config fields take their defaults.
func NewServerWith(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:      sys,
		cfg:      cfg,
		met:      cfg.Metrics,
		mux:      http.NewServeMux(),
		idPrefix: newRequestIDPrefix(),
	}
	for class, max := range map[routeClass]int{
		classLight:  cfg.MaxInflightLight,
		classSearch: cfg.MaxInflightSearch,
		classHeavy:  cfg.MaxInflightHeavy,
	} {
		if max > 0 {
			s.adms[class] = newAdmitter(max)
		}
	}
	s.tenants = newTenants(cfg.Tenants, cfg.DefaultTenant, cfg.Now)

	// healthz (liveness) and readyz (readiness) are exempt from
	// versioning and admission control: load balancers must be able to
	// probe a saturated server.
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)

	s.route("GET", "/stats", classLight, cfg.LightTimeout, s.handleStats)
	s.route("GET", "/metrics", classLight, cfg.LightTimeout, s.handleMetrics)
	s.route("GET", "/search", classSearch, cfg.SearchTimeout, s.handleSearch)
	s.route("GET", "/publications/{id}", classLight, cfg.LightTimeout, s.handlePublication)
	s.route("GET", "/publications/{id}/tables", classSearch, cfg.SearchTimeout, s.handleTableMatches)
	s.route("GET", "/publications/{id}/nodes", classLight, cfg.LightTimeout, s.handlePubNodes)
	s.route("GET", "/kg", classHeavy, cfg.AggregateTimeout, s.handleGraph)
	s.route("GET", "/kg/search", classSearch, cfg.SearchTimeout, s.handleGraphSearch)
	s.route("GET", "/kg/nodes/{id}", classLight, cfg.LightTimeout, s.handleKGNodes)
	s.route("POST", "/kg/query", classSearch, cfg.SearchTimeout, s.handleKGQuery)
	s.route("POST", "/kg/hypotheses", classSearch, cfg.SearchTimeout, s.handleKGHypotheses)
	// the pre-v1-redesign node resource: same data, now answered with
	// Deprecation + successor Link pointing at /kg/nodes/{id}
	s.routeDeprecated("GET", "/kg/node/{id}", "/kg/nodes/{id}",
		classLight, cfg.LightTimeout, s.handleNodeLegacy)
	s.routeDeprecated("GET", "/kg/node/{id}/children", "/kg/nodes/{id}?expand=children",
		classLight, cfg.LightTimeout, s.handleChildrenLegacy)
	s.route("GET", "/reviews", classLight, cfg.LightTimeout, s.handleReviews)
	s.route("POST", "/reviews/{id}/approve", classLight, cfg.LightTimeout, s.handleApprove)
	s.route("POST", "/reviews/{id}/reject", classLight, cfg.LightTimeout, s.handleReject)
	s.route("POST", "/aggregate", classHeavy, cfg.AggregateTimeout, s.handleAggregate)
	s.route("POST", "/publications", classHeavy, cfg.IngestTimeout, s.handleIngest)
	s.route("GET", "/bias", classHeavy, cfg.AggregateTimeout, s.handleBias)
	s.route("GET", "/models", classLight, cfg.LightTimeout, s.handleModels)
	s.route("GET", "/models/{name}", classHeavy, cfg.AggregateTimeout, s.handleModel)
	s.mux.HandleFunc("GET /", s.handleIndex)

	// request ids outermost so metrics and recovered panics carry them;
	// tenant resolution sits inside that so every response — including
	// recovered panics and sheds — carries the resolved X-Tenant-ID;
	// metrics wraps recover so recovered panics still record their 500
	s.handler = s.requestIDMiddleware(s.tenantMiddleware(metricsMiddleware(s.met, recoverMiddleware(s.mux))))
	return s
}

// route mounts a lifecycle-wrapped handler at its canonical
// /api/v1<path> and at the deprecated legacy /api<path> alias, which
// answers identically but with a Deprecation header pointing clients at
// the successor.
func (s *Server) route(method, path string, class routeClass, timeout time.Duration, h http.HandlerFunc) {
	wrapped := s.lifecycle(class, timeout, h)
	s.mux.HandleFunc(method+" /api/v1"+path, wrapped)
	s.mux.HandleFunc(method+" /api"+path, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</api/v1"+path+">; rel=\"successor-version\"")
		wrapped(w, r)
	})
}

// routeDeprecated mounts a lifecycle-wrapped handler at a path that is
// deprecated in v1 itself: both the /api/v1 and legacy /api mounts
// answer with Deprecation: true and a Link to the successor v1
// resource, so clients migrating off the old KG node routes learn the
// new address from either prefix.
func (s *Server) routeDeprecated(method, path, successor string, class routeClass, timeout time.Duration, h http.HandlerFunc) {
	wrapped := s.lifecycle(class, timeout, h)
	dep := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</api/v1"+successor+">; rel=\"successor-version\"")
		wrapped(w, r)
	}
	s.mux.HandleFunc(method+" /api/v1"+path, dep)
	s.mux.HandleFunc(method+" /api"+path, dep)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errCode maps a status onto the envelope's machine-readable code.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_query"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusTooManyRequests:
		return "overloaded"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case StatusClientClosedRequest:
		return "cancelled"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	default:
		return "internal"
	}
}

// writeErr emits the uniform error envelope:
//
//	{"error": "...", "code": "bad_query", "request_id": "..."}
func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeErrCode(w, r, status, errCode(status), err)
}

// writeErrCode emits the envelope with an explicit machine-readable
// code, for statuses that cover several distinct conditions (429 is
// "overloaded" from admission control, "rate_limited" from a tenant's
// token bucket, "quota_exceeded" from an exhausted budget).
func writeErrCode(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	env := map[string]string{
		"error": err.Error(),
		"code":  code,
	}
	if r != nil {
		if id := RequestIDFromContext(r.Context()); id != "" {
			env["request_id"] = id
		}
	}
	writeJSON(w, status, env)
}

// handleHealth is the liveness probe: the process is up and serving.
// It says nothing about shard health — that is readyz's job — so
// orchestrators never restart a process that is merely degraded.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 200 when every shard has at least
// one healthy up-to-date replica, 503 otherwise. Either way the body
// carries the per-shard states so an operator can see exactly which
// failure domain is dark. In the in-process tier that is the replica
// view (breaker state, staleness); in networked mode it is the
// per-shard connection state — connected, resyncing, breaker-open, or
// unreachable — plus the shard-map version, so a migration's cutover
// is visible from the probe.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.sys.Remote() {
		conns, mapVersion := s.sys.ShardConnHealth(r.Context())
		ready := true
		for _, c := range conns {
			if !c.Ready() {
				ready = false
				break
			}
		}
		status, state := http.StatusOK, "ready"
		if !ready {
			status, state = http.StatusServiceUnavailable, "degraded"
		}
		writeJSON(w, status, map[string]any{
			"status":            state,
			"mode":              "shardnet",
			"shard_map_version": mapVersion,
			"shards":            conns,
		})
		return
	}
	shards := s.sys.Health()
	ready := true
	for _, sh := range shards {
		if !sh.Ready {
			ready = false
			break
		}
	}
	status, state := http.StatusOK, "ready"
	if !ready {
		status, state = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, status, map[string]any{"status": state, "shards": shards})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"publications": s.sys.Pubs.Count(),
		"kg_nodes":     s.sys.Graph.Size(),
	}
	if s.sys.Remote() {
		conns, mapVersion := s.sys.ShardConnHealth(r.Context())
		perShard := make([]int, len(conns))
		for i, c := range conns {
			perShard[i] = c.Docs
		}
		out["mode"] = "shardnet"
		out["shard_map_version"] = mapVersion
		out["per_shard"] = perShard
	} else {
		st := s.sys.Store.Stats()
		out["collections"] = st.Collections
		out["bytes"] = st.Bytes
		out["per_shard"] = st.PerShard
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSearch dispatches to the three engines via ?engine=. The request
// context — deadline, client cancellation — rides through the whole
// pipeline: a cancelled query stops scanning within one check interval
// and is never cached.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, _ := strconv.Atoi(q.Get("page"))
	if page < 1 {
		page = 1
	}
	engine := q.Get("engine")
	if engine == "" {
		engine = "all"
	}
	ctx := r.Context()
	var (
		res search.Page
		err error
	)
	switch engine {
	case "all":
		res, err = s.sys.Search.SearchAllContext(ctx, q.Get("q"), page)
	case "tables":
		res, err = s.sys.Search.SearchTablesContext(ctx, q.Get("q"), page)
	case "fields":
		res, err = s.sys.Search.SearchFieldsContext(ctx, search.FieldQuery{
			Title:    q.Get("title"),
			Abstract: q.Get("abstract"),
			Caption:  q.Get("caption"),
		}, page)
	default:
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("unknown engine %q", engine))
		return
	}
	if err != nil {
		// bad input (empty/unsearchable query) is the caller's fault; a
		// dead context gets its own statuses; anything else is ours
		status := http.StatusInternalServerError
		if errors.Is(err, search.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		writeErr(w, r, failStatus(err, status), err)
		return
	}
	// a dark shard degrades, never fails: the body carries
	// "partial": true + missing_shards, and the header lets callers
	// detect degradation without parsing the body
	if res.Partial {
		w.Header().Set("X-Partial-Results", "true")
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMetrics exposes the process-wide counters, gauges, and latency
// histograms plus the query-cache statistics — the observability surface
// behind the BENCH_* numbers and the lifecycle counters (requests_shed,
// requests_cancelled, deadline_exceeded, inflight_*). Runtime vitals
// (goroutines, heap-in-use, GC pause p99) are captured per request so
// long soaks can watch for leaks.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rt := metrics.CaptureRuntimeHealth()
	rt.SetGauges(s.met)
	snap := s.met.Snapshot()
	snap["runtime"] = rt
	snap["search_cache"] = s.sys.Search.CacheStats()
	snap["search_workers"] = s.sys.Search.Workers()
	// which scoring path served queries (read from the engine's own
	// registry, which may differ from the server's)
	idx, fb, pruned := s.sys.Search.ScoringStats()
	snap["search_scoring"] = map[string]int64{
		"index_path_queries":    idx,
		"fallback_path_queries": fb,
		"topk_pruned_docs":      pruned,
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handlePublication(w http.ResponseWriter, r *http.Request) {
	d, err := s.sys.Pubs.Get(r.PathValue("id"))
	if err != nil {
		// a point lookup cannot degrade to a partial result: when the
		// owning shard's every replica is dark the honest answer is 503,
		// distinct from 404 (the document is not gone, just unreachable)
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, docstore.ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, docstore.ErrShardUnavailable):
			status = http.StatusServiceUnavailable
		}
		writeErr(w, r, status, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleTableMatches returns the matched-cell coordinates of one
// publication's tables for a query — the data behind Figure 4's red
// highlighting.
func (s *Server) handleTableMatches(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	ms, err := s.sys.Search.TableCellMatchesContext(r.Context(), r.PathValue("id"), q)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, docstore.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, r, failStatus(err, status), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": ms})
}

// handlePubNodes lists the KG nodes whose provenance cites a
// publication — from a paper to everything the graph learned from it.
func (s *Server) handlePubNodes(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sys.Pubs.Get(id); err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": s.sys.Graph.NodesByPaper(id)})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	data, err := s.sys.Graph.MarshalJSON()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleGraphSearch answers KG node search with root paths, paginated:
// the result set was previously unbounded (every matching node in one
// response), now it pages through the standard envelope.
func (s *Server) handleGraphSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	hits, err := s.sys.Graph.SearchContext(r.Context(), q)
	if err != nil {
		writeKGErr(w, r, err, http.StatusInternalServerError)
		return
	}
	page, size := pageParams(r.URL.Query())
	writeJSON(w, http.StatusOK, paginateSlice(hits, page, size))
}

func (s *Server) handleReviews(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Fuser.Pending())
}

func (s *Server) reviewID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) handleApprove(w http.ResponseWriter, r *http.Request) {
	id, err := s.reviewID(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing target node id"))
		return
	}
	if err := s.sys.Fuser.Approve(id, target); err != nil {
		writeKGErr(w, r, err, http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "approved"})
}

func (s *Server) handleReject(w http.ResponseWriter, r *http.Request) {
	id, err := s.reviewID(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if err := s.sys.Fuser.Reject(id); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "rejected"})
}

// ingestBatchSize is how many documents are decoded and handed to the
// system at a time during bulk ingest: the request body streams through
// a fixed-size window instead of materializing in memory, so a very
// large upload is bounded by one batch, not the body size.
const ingestBatchSize = 256

// handleIngest accepts new publication documents (№12 in Figure 1: new
// information arriving from the Web), stores and indexes them, and
// incrementally refreshes the knowledge graph from their tables.
//
// Two body framings are supported: a JSON array of publications
// (default), and newline-delimited JSON — one publication per line —
// when the Content-Type mentions ndjson or jsonl. Either way the body
// is decoded incrementally and ingested in batches, and the response
// reports a per-document outcome: a batch with one bad document no
// longer answers a bare 500 after silently storing everything before
// it. Partial success is 200 with per-document errors listed; 400 is
// reserved for requests where nothing at all was ingested.
// Backpressure is inherited from the route's heavy admission class:
// when too many heavy requests are in flight the request is rejected
// up front with 429 rather than queued without bound.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ndjson := strings.Contains(r.Header.Get("Content-Type"), "ndjson") ||
		strings.Contains(r.Header.Get("Content-Type"), "jsonl")
	dec := json.NewDecoder(r.Body)

	var (
		results   []core.DocResult
		inserted  int
		failed    int
		total     int
		decodeErr error
		batch     []jsondoc.Doc
	)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		base := total - len(batch)
		rep := s.sys.IngestDocs(batch)
		for _, res := range rep.Results {
			res.Index += base
			results = append(results, res)
		}
		inserted += rep.Inserted
		failed += rep.Failed
		batch = batch[:0]
	}

	if !ndjson {
		tok, err := dec.Token()
		if err != nil {
			writeErr(w, r, http.StatusBadRequest,
				fmt.Errorf("bad request body (want a JSON array of publications): %w", err))
			return
		}
		if d, ok := tok.(json.Delim); !ok || d != '[' {
			writeErr(w, r, http.StatusBadRequest,
				fmt.Errorf("bad request body: want a JSON array of publications, got %v", tok))
			return
		}
	}
	for {
		if r.Context().Err() != nil {
			writeErr(w, r, http.StatusGatewayTimeout, r.Context().Err())
			return
		}
		if !ndjson && !dec.More() {
			break
		}
		var d jsondoc.Doc
		if err := dec.Decode(&d); err != nil {
			if ndjson && errors.Is(err, io.EOF) {
				break
			}
			decodeErr = fmt.Errorf("document %d: %w", total, err)
			break
		}
		total++
		batch = append(batch, d)
		if len(batch) >= ingestBatchSize {
			flush()
		}
	}
	flush()

	if total == 0 {
		err := fmt.Errorf("no publications in request")
		if decodeErr != nil {
			err = fmt.Errorf("bad request body: %w", decodeErr)
		}
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if inserted == 0 {
		err := core.IngestReport{Results: results, Failed: failed}.Err()
		if err == nil {
			err = fmt.Errorf("no publications ingested")
		}
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	st := s.sys.EnrichNew()
	payload := map[string]any{
		"ingested":    inserted,
		"failed":      failed,
		"results":     results,
		"tables":      st.Tables,
		"subtrees":    st.Subtrees,
		"fused":       st.Fused,
		"queued":      st.Queued,
		"nodes_added": st.NodesAdded,
	}
	if decodeErr != nil {
		// Documents after the malformed one were never seen; say so
		// instead of pretending the stream was fully consumed.
		payload["truncated"] = true
		payload["decode_error"] = decodeErr.Error()
	}
	writeJSON(w, http.StatusOK, payload)
}

// aggregateRequest is the POST /api/v1/aggregate body: a collection name
// and a MongoDB-dialect JSON pipeline (see pipeline.Compile).
type aggregateRequest struct {
	Collection string `json:"collection"`
	Pipeline   []any  `json:"pipeline"`
	Limit      int    `json:"limit"` // server-side result cap; default 100
}

// handleAggregate runs a compiled aggregation pipeline over a
// collection — the paper's "API users that might want to query the
// Knowledge Graph" surface (№11/13), speaking the same $-stage dialect
// the internal search engines use. The request context rides through
// pipeline execution, so a deadline or disconnect stops the scan.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req aggregateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Collection == "" {
		req.Collection = core.PubsCollection
	}
	// In networked mode the publications collection lives in the shard
	// processes: aggregate over the coordinator. Every other collection
	// (the knowledge graph, model metadata) stays in the local store.
	var coll docstore.Docs
	if s.sys.Remote() && req.Collection == core.PubsCollection {
		coll = s.sys.Pubs
	} else {
		if !s.sys.Store.HasCollection(req.Collection) {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("collection %q does not exist", req.Collection))
			return
		}
		coll = s.sys.Store.Collection(req.Collection)
	}
	p, err := pipeline.Compile(req.Pipeline)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > 1000 {
		limit = 100
	}
	p.Append(pipeline.Limit(limit))
	out, err := p.RunContext(r.Context(), collScanner{coll})
	if err != nil {
		writeErr(w, r, failStatus(err, http.StatusBadRequest), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out, "n": len(out)})
}

// collScanner adapts any docstore.Docs (in-process collection or
// shardnet coordinator) to pipeline.Source.
type collScanner struct{ c docstore.Docs }

func (s collScanner) Scan(fn func(jsondoc.Doc) bool) { s.c.Scan(fn) }

func (s *Server) handleBias(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AuditBias())
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.sys.ModelNames()})
}

// handleModel serves one exported model artifact. Only the requested
// model is serialized (core.ExportModel), and the download filename is
// sanitized so a hostile path segment cannot inject header syntax.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, err := s.sys.ExportModel(name)
	if err != nil {
		if errors.Is(err, core.ErrModelNotFound) {
			writeErr(w, r, http.StatusNotFound, err)
			return
		}
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	fname := sanitizeID(name)
	if fname == "" {
		fname = "model"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+fname+`.json"`)
	w.Write(m.Data)
}
