// Package api exposes the COVIDKG system over HTTP: the interactive
// knowledge-graph browse/search surface the paper's front-end uses
// (№9/10 in Figure 1) and the programmatic API releasing search,
// publications, and pre-trained models to downstream users (№11/13).
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"covidkg/internal/core"
	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
	"covidkg/internal/kg"
	"covidkg/internal/metrics"
	"covidkg/internal/pipeline"
	"covidkg/internal/search"
)

// Server wraps a core system with HTTP handlers.
type Server struct {
	sys     *core.System
	mux     *http.ServeMux
	handler http.Handler
}

// NewServer builds the handler tree over a (typically trained) system.
func NewServer(sys *core.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/publications/{id}", s.handlePublication)
	s.mux.HandleFunc("GET /api/publications/{id}/tables", s.handleTableMatches)
	s.mux.HandleFunc("GET /api/publications/{id}/nodes", s.handlePubNodes)
	s.mux.HandleFunc("GET /api/kg", s.handleGraph)
	s.mux.HandleFunc("GET /api/kg/search", s.handleGraphSearch)
	s.mux.HandleFunc("GET /api/kg/node/{id}", s.handleNode)
	s.mux.HandleFunc("GET /api/kg/node/{id}/children", s.handleChildren)
	s.mux.HandleFunc("GET /api/reviews", s.handleReviews)
	s.mux.HandleFunc("POST /api/reviews/{id}/approve", s.handleApprove)
	s.mux.HandleFunc("POST /api/reviews/{id}/reject", s.handleReject)
	s.mux.HandleFunc("POST /api/aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /api/publications", s.handleIngest)
	s.mux.HandleFunc("GET /api/bias", s.handleBias)
	s.mux.HandleFunc("GET /api/models", s.handleModels)
	s.mux.HandleFunc("GET /api/models/{name}", s.handleModel)
	s.mux.HandleFunc("GET /", s.handleIndex)
	// metrics wraps recover so recovered panics still record their 500
	s.handler = metricsMiddleware(recoverMiddleware(s.mux))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sys.Store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"publications": s.sys.Pubs.Count(),
		"collections":  st.Collections,
		"bytes":        st.Bytes,
		"per_shard":    st.PerShard,
		"kg_nodes":     s.sys.Graph.Size(),
	})
}

// handleSearch dispatches to the three engines via ?engine=.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	page, _ := strconv.Atoi(q.Get("page"))
	if page < 1 {
		page = 1
	}
	engine := q.Get("engine")
	if engine == "" {
		engine = "all"
	}
	var (
		res any
		err error
	)
	switch engine {
	case "all":
		res, err = s.sys.Search.SearchAll(q.Get("q"), page)
	case "tables":
		res, err = s.sys.Search.SearchTables(q.Get("q"), page)
	case "fields":
		res, err = s.sys.Search.SearchFields(search.FieldQuery{
			Title:    q.Get("title"),
			Abstract: q.Get("abstract"),
			Caption:  q.Get("caption"),
		}, page)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown engine %q", engine))
		return
	}
	if err != nil {
		// bad input (empty/unsearchable query) is the caller's fault;
		// anything else is ours
		status := http.StatusInternalServerError
		if errors.Is(err, search.ErrBadQuery) {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleMetrics exposes the process-wide counters and latency histograms
// plus the query-cache statistics — the observability surface behind the
// BENCH_* numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := metrics.Default().Snapshot()
	snap["search_cache"] = s.sys.Search.CacheStats()
	snap["search_workers"] = s.sys.Search.Workers()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handlePublication(w http.ResponseWriter, r *http.Request) {
	d, err := s.sys.Pubs.Get(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, docstore.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleTableMatches returns the matched-cell coordinates of one
// publication's tables for a query — the data behind Figure 4's red
// highlighting.
func (s *Server) handleTableMatches(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	ms, err := s.sys.Search.TableCellMatches(r.PathValue("id"), q)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, docstore.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": ms})
}

// handlePubNodes lists the KG nodes whose provenance cites a
// publication — from a paper to everything the graph learned from it.
func (s *Server) handlePubNodes(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sys.Pubs.Get(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": s.sys.Graph.NodesByPaper(id)})
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	data, err := s.sys.Graph.MarshalJSON()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleGraphSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	writeJSON(w, http.StatusOK, s.sys.Graph.Search(q))
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	n, err := s.sys.Graph.Node(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	path, _ := s.sys.Graph.PathToRoot(n.ID)
	writeJSON(w, http.StatusOK, map[string]any{"node": n, "path": path})
}

func (s *Server) handleChildren(w http.ResponseWriter, r *http.Request) {
	kids, err := s.sys.Graph.Children(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, kids)
}

func (s *Server) handleReviews(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.Fuser.Pending())
}

func (s *Server) reviewID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) handleApprove(w http.ResponseWriter, r *http.Request) {
	id, err := s.reviewID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing target node id"))
		return
	}
	if err := s.sys.Fuser.Approve(id, target); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, kg.ErrNodeNotFound) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "approved"})
}

func (s *Server) handleReject(w http.ResponseWriter, r *http.Request) {
	id, err := s.reviewID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.sys.Fuser.Reject(id); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "rejected"})
}

// handleIngest accepts new publication documents (№12 in Figure 1: new
// information arriving from the Web), stores and indexes them, and
// incrementally refreshes the knowledge graph from their tables.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var docs []jsondoc.Doc
	if err := json.NewDecoder(r.Body).Decode(&docs); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body (want a JSON array of publications): %w", err))
		return
	}
	if len(docs) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no publications in request"))
		return
	}
	st, err := s.sys.RefreshDocs(docs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested":    len(docs),
		"tables":      st.Tables,
		"subtrees":    st.Subtrees,
		"fused":       st.Fused,
		"queued":      st.Queued,
		"nodes_added": st.NodesAdded,
	})
}

// aggregateRequest is the POST /api/aggregate body: a collection name
// and a MongoDB-dialect JSON pipeline (see pipeline.Compile).
type aggregateRequest struct {
	Collection string `json:"collection"`
	Pipeline   []any  `json:"pipeline"`
	Limit      int    `json:"limit"` // server-side result cap; default 100
}

// handleAggregate runs a compiled aggregation pipeline over a
// collection — the paper's "API users that might want to query the
// Knowledge Graph" surface (№11/13), speaking the same $-stage dialect
// the internal search engines use.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req aggregateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Collection == "" {
		req.Collection = core.PubsCollection
	}
	if !s.sys.Store.HasCollection(req.Collection) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("collection %q does not exist", req.Collection))
		return
	}
	p, err := pipeline.Compile(req.Pipeline)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > 1000 {
		limit = 100
	}
	p.Append(pipeline.Limit(limit))
	coll := s.sys.Store.Collection(req.Collection)
	out, err := p.Run(collScanner{coll})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out, "n": len(out)})
}

// collScanner adapts a docstore collection to pipeline.Source.
type collScanner struct{ c *docstore.Collection }

func (s collScanner) Scan(fn func(jsondoc.Doc) bool) { s.c.Scan(fn) }

func (s *Server) handleBias(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sys.AuditBias())
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	models, err := s.sys.ExportModels()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": names})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	models, err := s.sys.ExportModels()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	for _, m := range models {
		if m.Name == name {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="`+name+`.json"`)
			w.Write(m.Data)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("model %q not found", name))
}
