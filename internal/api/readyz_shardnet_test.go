package api

import (
	"net/http"
	"testing"
	"time"

	"covidkg/internal/breaker"
	"covidkg/internal/core"
	"covidkg/internal/jsondoc"
	"covidkg/internal/shardnet"
)

// remoteTestServer brings up two real shardnet servers and an API
// server whose system serves publications through a coordinator.
func remoteTestServer(t *testing.T) (*Server, *core.System, []*shardnet.Server) {
	t.Helper()
	backends := make([]*shardnet.Server, 2)
	addrs := make([]string, 2)
	for i := range backends {
		srv, err := shardnet.NewServer(shardnet.ServerConfig{Name: "shard" + string(rune('0'+i)), Replicas: 3})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		backends[i] = srv
		addrs[i] = addr.String()
	}
	cfg := core.DefaultConfig()
	cfg.ShardAddrs = addrs
	cfg.Breaker = breaker.Config{Threshold: 2, Cooldown: 50 * time.Millisecond}
	sys := core.NewSystem(cfg)
	t.Cleanup(sys.Coord.Close)
	return NewServer(sys), sys, backends
}

// TestReadyzShardnetMode pins the networked /readyz contract: per-shard
// connection states plus the shard-map version while healthy, and a 503
// naming the dark shard once a shard process disappears.
func TestReadyzShardnetMode(t *testing.T) {
	s, sys, backends := remoteTestServer(t)
	if rep := sys.IngestDocs([]jsondoc.Doc{
		{"_id": "p1", "title": "remote readiness probe", "abstract": "shardnet"},
	}); rep.Err() != nil {
		t.Fatal(rep.Err())
	}

	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("healthy readyz = %d %v", rec.Code, body)
	}
	if body["mode"] != "shardnet" {
		t.Fatalf("mode = %v, want shardnet", body["mode"])
	}
	if v := body["shard_map_version"].(float64); v != 1 {
		t.Fatalf("shard_map_version = %v, want 1", v)
	}
	shards := body["shards"].([]any)
	if len(shards) != 2 {
		t.Fatalf("shards = %d entries, want 2", len(shards))
	}
	for i, sv := range shards {
		if st := sv.(map[string]any)["state"]; st != "connected" {
			t.Fatalf("shard %d state = %v, want connected", i, st)
		}
	}

	// One shard process dies: readiness must flip to 503 and the body
	// must name which shard is no longer connected.
	backends[1].Close()
	rec, body = get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded readyz = %d %v", rec.Code, body)
	}
	shards = body["shards"].([]any)
	dark := shards[1].(map[string]any)
	if st := dark["state"]; st == "connected" {
		t.Fatalf("dead shard still reports connected: %v", dark)
	}
	if live := shards[0].(map[string]any)["state"]; live != "connected" {
		t.Fatalf("surviving shard state = %v, want connected", live)
	}

	// Stats in remote mode reports per-shard doc counts from the tier.
	rec, body = get(t, s, "/api/stats")
	if rec.Code != http.StatusOK || body["mode"] != "shardnet" {
		t.Fatalf("remote stats = %d %v", rec.Code, body)
	}
}
