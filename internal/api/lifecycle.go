package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"covidkg/internal/metrics"
)

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client disconnected before the handler finished. The client
// never sees it; it exists so metrics and logs distinguish "we were too
// slow" (504) from "they hung up" (499).
const StatusClientClosedRequest = 499

// routeClass partitions routes by cost for admission control: each class
// has its own in-flight bound so a burst of expensive aggregations can
// never starve cheap lookups, and vice versa.
type routeClass int

const (
	classLight  routeClass = iota // point lookups, listings, metrics
	classSearch                   // query-pipeline routes (search engines, KG search)
	classHeavy                    // aggregate, ingest, full exports, bias audits
	numClasses
)

func (c routeClass) String() string {
	switch c {
	case classLight:
		return "light"
	case classSearch:
		return "search"
	case classHeavy:
		return "heavy"
	default:
		return "unknown"
	}
}

// Config tunes the request lifecycle: per-route-class deadlines and
// admission-control bounds. The zero value of any field falls back to
// its default, so callers only set what they care about.
type Config struct {
	// Per-class deadlines, applied to r.Context() before the handler
	// runs. Negative disables the deadline for that class.
	LightTimeout     time.Duration // default 2s — lookups, listings
	SearchTimeout    time.Duration // default 5s — search engines, KG search
	AggregateTimeout time.Duration // default 10s — aggregate, exports, bias
	IngestTimeout    time.Duration // default 30s — publication ingest

	// Per-class in-flight bounds; excess requests are shed with 429
	// rather than queued. Negative disables admission control for that
	// class.
	MaxInflightLight  int // default 256
	MaxInflightSearch int // default 64
	MaxInflightHeavy  int // default 8

	// RetryAfter is the back-off hint attached to admission-shed
	// responses (rate-limited responses compute theirs from the token
	// bucket's actual refill time instead).
	RetryAfter time.Duration // default 1s

	// Tenants maps X-Tenant-ID values onto per-tenant contracts:
	// priority (shed order), token-bucket rate limit, and lifetime
	// quota. Requests with a missing or unconfigured tenant id share
	// the anonymous state governed by DefaultTenant.
	Tenants map[string]TenantLimits

	// DefaultTenant is the contract applied to anonymous traffic. The
	// zero value means standard priority, no rate limit, no quota.
	DefaultTenant TenantLimits

	// Now is the clock used by rate-limit buckets (default time.Now);
	// tests inject a fake to drive refill deterministically.
	Now func() time.Time

	// Metrics receives the lifecycle counters/gauges (requests_shed,
	// requests_cancelled, deadline_exceeded, inflight_*, per-tenant
	// tenant.<id>.* counters) alongside the request middleware metrics.
	// Defaults to metrics.Default().
	Metrics *metrics.Registry
}

// DefaultConfig returns the production defaults described in DESIGN.md.
func DefaultConfig() Config {
	return Config{
		LightTimeout:      2 * time.Second,
		SearchTimeout:     5 * time.Second,
		AggregateTimeout:  10 * time.Second,
		IngestTimeout:     30 * time.Second,
		MaxInflightLight:  256,
		MaxInflightSearch: 64,
		MaxInflightHeavy:  8,
		RetryAfter:        time.Second,
		Metrics:           metrics.Default(),
	}
}

// withDefaults fills zero fields from DefaultConfig and normalizes
// negative sentinels ("disabled") to zero.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	pick := func(v, def time.Duration) time.Duration {
		if v < 0 {
			return 0 // explicit "no deadline"
		}
		if v == 0 {
			return def
		}
		return v
	}
	c.LightTimeout = pick(c.LightTimeout, d.LightTimeout)
	c.SearchTimeout = pick(c.SearchTimeout, d.SearchTimeout)
	c.AggregateTimeout = pick(c.AggregateTimeout, d.AggregateTimeout)
	c.IngestTimeout = pick(c.IngestTimeout, d.IngestTimeout)
	pickN := func(v, def int) int {
		if v < 0 {
			return 0 // explicit "unbounded"
		}
		if v == 0 {
			return def
		}
		return v
	}
	c.MaxInflightLight = pickN(c.MaxInflightLight, d.MaxInflightLight)
	c.MaxInflightSearch = pickN(c.MaxInflightSearch, d.MaxInflightSearch)
	c.MaxInflightHeavy = pickN(c.MaxInflightHeavy, d.MaxInflightHeavy)
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = d.Metrics
	}
	return c
}

// ---------------------------------------------------------- request ids

// ctxKey keys context values stored by this package.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFromContext returns the request id attached by the server's
// middleware, or "" outside a request.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// idSeq distinguishes requests within one process; the per-server random
// prefix distinguishes processes.
var idSeq atomic.Uint64

// newRequestIDPrefix returns a short random per-server prefix.
func newRequestIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeID keeps a caller-supplied X-Request-ID usable in headers,
// logs, and JSON: [A-Za-z0-9._-] only, capped at 64 bytes.
func sanitizeID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		}
	}
	return string(out)
}

// requestIDMiddleware tags every request with an id — honoring a
// sanitized client-supplied X-Request-ID so distributed traces line up —
// stores it in the context for handlers and error envelopes, and echoes
// it in the response.
func (s *Server) requestIDMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = s.idPrefix + "-" + strconv.FormatUint(idSeq.Add(1), 36)
		}
		w.Header().Set("X-Request-ID", id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ------------------------------------------------- admission + deadlines

// acquire tries to take an in-flight slot for the class at the given
// priority; it never blocks — under saturation the request is shed, not
// queued. An inversion (a shed that a lower priority would have
// survived — structurally impossible, counted to prove it) is recorded
// into admission_inversions.
func (s *Server) acquire(class routeClass, p Priority) bool {
	a := s.adms[class]
	if a == nil {
		return true
	}
	ok, inversion := a.acquire(p)
	if ok {
		s.met.Gauge("inflight_" + class.String()).Inc()
	} else if inversion {
		s.met.Counter("admission_inversions").Inc()
	}
	return ok
}

// release returns an in-flight slot.
func (s *Server) release(class routeClass) {
	if a := s.adms[class]; a != nil {
		a.release()
		s.met.Gauge("inflight_" + class.String()).Dec()
	}
}

// lifecycle wraps a handler with the request lifecycle: the tenant's
// token-bucket rate limit (429 + bucket-derived Retry-After +
// X-RateLimit-* when exhausted), priority-aware admission control (shed
// with 429 + Retry-After when the class is saturated at the tenant's
// priority ceiling), the tenant's lifetime quota, a per-class deadline
// layered onto the client's own cancellation, and cancel/deadline
// accounting after the handler returns.
func (s *Server) lifecycle(class routeClass, timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st := s.tenantState(r.Context())

		if st.bucket != nil {
			ok, wait, remaining, reset := st.bucket.take(s.cfg.Now())
			setRateHeaders(w, st, remaining, reset)
			if !ok {
				s.met.Counter("tenant." + st.id + ".rate_limited").Inc()
				w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(wait)))
				writeErrCode(w, r, http.StatusTooManyRequests, "rate_limited",
					fmt.Errorf("tenant %s over its request rate; retry after the bucket refills", st.id))
				return
			}
		}

		if !s.acquire(class, st.limits.Priority) {
			s.met.Counter("requests_shed").Inc()
			s.met.Counter("requests_shed." + class.String()).Inc()
			s.met.Counter("requests_shed.priority." + st.limits.Priority.String()).Inc()
			s.met.Counter("tenant." + st.id + ".shed").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			writeErr(w, r, http.StatusTooManyRequests,
				errors.New("server overloaded; try again shortly"))
			return
		}
		defer s.release(class)

		// quota is consumed after admission so shed requests never burn
		// budget; the CAS inside tryQuota makes the cap exact under
		// concurrency
		if !st.tryQuota() {
			s.met.Counter("tenant." + st.id + ".quota_rejected").Inc()
			writeErrCode(w, r, http.StatusTooManyRequests, "quota_exceeded",
				fmt.Errorf("tenant %s exhausted its request quota", st.id))
			return
		}
		s.met.Counter("tenant." + st.id + ".served").Inc()

		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		h(w, r.WithContext(ctx))

		// checked before the deferred cancel fires, so Canceled here can
		// only mean the client went away mid-request
		switch ctx.Err() {
		case context.DeadlineExceeded:
			s.met.Counter("deadline_exceeded").Inc()
		case context.Canceled:
			s.met.Counter("requests_cancelled").Inc()
		}
	}
}

// retryAfterSeconds renders the shed-response back-off hint in whole
// seconds, clamped to a minimum of 1: a sub-second configuration must
// not emit "Retry-After: 0", which clients read as "retry immediately"
// and turn into a tight retry storm against an overloaded server.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ceilSeconds renders a token-bucket refill wait as a Retry-After
// value: rounded up to whole seconds (a client that retries early just
// burns its own budget), never below 1.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// failStatus maps an error from context-aware work onto the right
// status: deadline expiry is the server's 504, client disconnect the
// conventional 499, anything else the handler's fallback.
func failStatus(err error, fallback int) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	}
	return fallback
}
