// Package jsondoc provides the JSON document model used throughout the
// COVIDKG system. Documents are what the sharded store persists, what the
// aggregation pipeline streams, and what the search engines rank.
//
// A document is a map[string]any restricted to the JSON value domain:
//
//	nil, bool, float64, string, []any, map[string]any
//
// Integers are normalized to float64 on entry, mirroring the semantics of
// a JSON store. The package adds dotted-path access ("authors.0.name"),
// deep copy, deep equality, and a total ordering over values so that
// indexes and $sort stages behave deterministically.
package jsondoc

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Doc is a JSON document. Keys are field names; values are JSON values.
type Doc map[string]any

// New returns an empty document.
func New() Doc { return Doc{} }

// FromJSON parses a JSON object into a Doc.
func FromJSON(data []byte) (Doc, error) {
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("jsondoc: parse: %w", err)
	}
	return d, nil
}

// MustFromJSON is FromJSON that panics on error; intended for tests and
// static literals.
func MustFromJSON(data string) Doc {
	d, err := FromJSON([]byte(data))
	if err != nil {
		panic(err)
	}
	return d
}

// JSON serializes the document to compact JSON.
func (d Doc) JSON() []byte {
	b, err := json.Marshal(map[string]any(d))
	if err != nil {
		// A Doc holds only JSON values by construction; marshal cannot
		// fail unless the caller smuggled in an unsupported type.
		panic(fmt.Sprintf("jsondoc: marshal: %v", err))
	}
	return b
}

// String returns the compact JSON form.
func (d Doc) String() string { return string(d.JSON()) }

// Normalize converts integer-typed values (int, int64, ...) to float64 in
// place recursively, so documents built in Go code compare equal to
// documents round-tripped through JSON.
func Normalize(v any) any {
	switch x := v.(type) {
	case nil, bool, float64, string:
		return x
	case int:
		return float64(x)
	case int8:
		return float64(x)
	case int16:
		return float64(x)
	case int32:
		return float64(x)
	case int64:
		return float64(x)
	case uint:
		return float64(x)
	case uint8:
		return float64(x)
	case uint16:
		return float64(x)
	case uint32:
		return float64(x)
	case uint64:
		return float64(x)
	case float32:
		return float64(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = Normalize(e)
		}
		return out
	case []string:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out
	case []float64:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = Normalize(e)
		}
		return out
	case Doc:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = Normalize(e)
		}
		return out
	default:
		// Last resort: round-trip through JSON. Callers should not rely
		// on this path for performance-sensitive code.
		b, err := json.Marshal(x)
		if err != nil {
			panic(fmt.Sprintf("jsondoc: cannot normalize %T", v))
		}
		var out any
		if err := json.Unmarshal(b, &out); err != nil {
			panic(fmt.Sprintf("jsondoc: cannot normalize %T", v))
		}
		return out
	}
}

// NormalizeDoc returns the document with all values normalized in a fresh
// map.
func NormalizeDoc(d Doc) Doc {
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = Normalize(v)
	}
	return out
}

// Clone deep-copies the document.
func (d Doc) Clone() Doc {
	if d == nil {
		return nil
	}
	out := make(Doc, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch x := v.(type) {
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = cloneValue(e)
		}
		return out
	case Doc:
		return map[string]any(x.Clone())
	default:
		return x
	}
}

// Get resolves a dotted path against the document. A path segment that
// parses as a non-negative integer indexes into arrays. The second return
// reports whether the full path resolved.
func (d Doc) Get(path string) (any, bool) {
	return getPath(map[string]any(d), splitPath(path))
}

// GetString resolves path and returns its string value, or "" if absent
// or non-string.
func (d Doc) GetString(path string) string {
	v, ok := d.Get(path)
	if !ok {
		return ""
	}
	s, _ := v.(string)
	return s
}

// GetNumber resolves path and returns its numeric value. ok is false if
// the path is absent or not a number.
func (d Doc) GetNumber(path string) (float64, bool) {
	v, ok := d.Get(path)
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	default:
		return 0, false
	}
}

// GetArray resolves path and returns its array value, or nil if absent or
// not an array.
func (d Doc) GetArray(path string) []any {
	v, ok := d.Get(path)
	if !ok {
		return nil
	}
	a, _ := v.([]any)
	return a
}

// GetDoc resolves path and returns the nested object as a Doc, or nil.
func (d Doc) GetDoc(path string) Doc {
	v, ok := d.Get(path)
	if !ok {
		return nil
	}
	switch m := v.(type) {
	case map[string]any:
		return Doc(m)
	case Doc:
		return m
	}
	return nil
}

// Set writes value at the dotted path, creating intermediate objects as
// needed. Array segments must already exist and be in range; Set returns
// an error otherwise.
func (d Doc) Set(path string, value any) error {
	segs := splitPath(path)
	if len(segs) == 0 {
		return fmt.Errorf("jsondoc: empty path")
	}
	return setPath(map[string]any(d), segs, Normalize(value))
}

// Delete removes the value at path. Deleting a missing path is a no-op.
func (d Doc) Delete(path string) {
	segs := splitPath(path)
	if len(segs) == 0 {
		return
	}
	cur := any(map[string]any(d))
	for _, seg := range segs[:len(segs)-1] {
		next, ok := step(cur, seg)
		if !ok {
			return
		}
		cur = next
	}
	if m, ok := asMap(cur); ok {
		delete(m, segs[len(segs)-1])
	}
}

// Has reports whether path resolves.
func (d Doc) Has(path string) bool {
	_, ok := d.Get(path)
	return ok
}

// Fields returns the document's top-level field names sorted.
func (d Doc) Fields() []string {
	out := make([]string, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func splitPath(path string) []string {
	if path == "" {
		return nil
	}
	return strings.Split(path, ".")
}

func asMap(v any) (map[string]any, bool) {
	switch m := v.(type) {
	case map[string]any:
		return m, true
	case Doc:
		return map[string]any(m), true
	}
	return nil, false
}

func step(cur any, seg string) (any, bool) {
	if m, ok := asMap(cur); ok {
		v, ok := m[seg]
		return v, ok
	}
	if arr, ok := cur.([]any); ok {
		i, err := strconv.Atoi(seg)
		if err != nil || i < 0 || i >= len(arr) {
			return nil, false
		}
		return arr[i], true
	}
	return nil, false
}

func getPath(cur any, segs []string) (any, bool) {
	for _, seg := range segs {
		next, ok := step(cur, seg)
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

func setPath(cur map[string]any, segs []string, value any) error {
	for i := 0; i < len(segs)-1; i++ {
		seg := segs[i]
		next, ok := cur[seg]
		if !ok {
			child := map[string]any{}
			cur[seg] = child
			cur = child
			continue
		}
		if m, ok := asMap(next); ok {
			cur = m
			continue
		}
		if arr, ok := next.([]any); ok {
			idx, err := strconv.Atoi(segs[i+1])
			if err != nil || idx < 0 || idx >= len(arr) {
				return fmt.Errorf("jsondoc: bad array index %q in path", segs[i+1])
			}
			if i+1 == len(segs)-1 {
				arr[idx] = value
				return nil
			}
			m, ok := asMap(arr[idx])
			if !ok {
				return fmt.Errorf("jsondoc: path traverses non-object array element")
			}
			cur = m
			i++ // consumed the index segment
			continue
		}
		return fmt.Errorf("jsondoc: path segment %q traverses scalar", seg)
	}
	cur[segs[len(segs)-1]] = value
	return nil
}

// typeRank orders the JSON types for cross-type comparison, mirroring the
// BSON comparison order used by document stores: null < number < string <
// object < array < bool.
func typeRank(v any) int {
	switch v.(type) {
	case nil:
		return 0
	case float64, int, int64:
		return 1
	case string:
		return 2
	case map[string]any, Doc:
		return 3
	case []any:
		return 4
	case bool:
		return 5
	default:
		return 6
	}
}

func toFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	}
	return 0
}

// Compare imposes a total order over JSON values: by type rank first, then
// within a type by natural order. Objects compare by sorted key sequence,
// then values; arrays element-wise then by length.
func Compare(a, b any) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return cmpInt(ra, rb)
	}
	switch ra {
	case 0:
		return 0
	case 1:
		fa, fb := toFloat(a), toFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.(string), b.(string))
	case 3:
		ma, _ := asMap(a)
		mb, _ := asMap(b)
		ka, kb := sortedKeys(ma), sortedKeys(mb)
		for i := 0; i < len(ka) && i < len(kb); i++ {
			if c := strings.Compare(ka[i], kb[i]); c != 0 {
				return c
			}
			if c := Compare(ma[ka[i]], mb[kb[i]]); c != 0 {
				return c
			}
		}
		return cmpInt(len(ka), len(kb))
	case 4:
		aa, ab := a.([]any), b.([]any)
		for i := 0; i < len(aa) && i < len(ab); i++ {
			if c := Compare(aa[i], ab[i]); c != 0 {
				return c
			}
		}
		return cmpInt(len(aa), len(ab))
	case 5:
		ba, bb := a.(bool), b.(bool)
		switch {
		case !ba && bb:
			return -1
		case ba && !bb:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports deep equality under Compare semantics.
func Equal(a, b any) bool { return Compare(a, b) == 0 }

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
