package jsondoc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromJSONRoundTrip(t *testing.T) {
	src := `{"title":"Masks and transmission","year":2021,"authors":[{"name":"A"},{"name":"B"}],"open":true}`
	d, err := FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	d2, err := FromJSON(d.JSON())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !Equal(map[string]any(d), map[string]any(d2)) {
		t.Fatalf("round trip changed doc:\n%v\n%v", d, d2)
	}
}

func TestFromJSONError(t *testing.T) {
	if _, err := FromJSON([]byte(`{"broken`)); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := FromJSON([]byte(`[1,2,3]`)); err == nil {
		t.Fatal("expected error for non-object")
	}
}

func TestGetDottedPaths(t *testing.T) {
	d := MustFromJSON(`{"a":{"b":{"c":42}},"arr":[{"x":1},{"x":2}],"s":"hi"}`)
	cases := []struct {
		path string
		want any
		ok   bool
	}{
		{"a.b.c", float64(42), true},
		{"arr.0.x", float64(1), true},
		{"arr.1.x", float64(2), true},
		{"arr.2.x", nil, false},
		{"arr.-1.x", nil, false},
		{"a.b", map[string]any{"c": float64(42)}, true},
		{"s", "hi", true},
		{"missing", nil, false},
		{"a.b.c.d", nil, false},
		{"s.x", nil, false},
	}
	for _, c := range cases {
		got, ok := d.Get(c.path)
		if ok != c.ok {
			t.Errorf("Get(%q) ok = %v, want %v", c.path, ok, c.ok)
			continue
		}
		if ok && !Equal(got, c.want) {
			t.Errorf("Get(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestGetTypedAccessors(t *testing.T) {
	d := MustFromJSON(`{"n":3.5,"s":"x","a":[1,2],"o":{"k":"v"}}`)
	if n, ok := d.GetNumber("n"); !ok || n != 3.5 {
		t.Errorf("GetNumber = %v,%v", n, ok)
	}
	if _, ok := d.GetNumber("s"); ok {
		t.Error("GetNumber on string should fail")
	}
	if s := d.GetString("s"); s != "x" {
		t.Errorf("GetString = %q", s)
	}
	if s := d.GetString("n"); s != "" {
		t.Errorf("GetString on number = %q", s)
	}
	if a := d.GetArray("a"); len(a) != 2 {
		t.Errorf("GetArray = %v", a)
	}
	if a := d.GetArray("missing"); a != nil {
		t.Errorf("GetArray missing = %v", a)
	}
	if o := d.GetDoc("o"); o.GetString("k") != "v" {
		t.Errorf("GetDoc = %v", o)
	}
	if o := d.GetDoc("n"); o != nil {
		t.Errorf("GetDoc on number = %v", o)
	}
}

func TestSetCreatesIntermediates(t *testing.T) {
	d := New()
	if err := d.Set("a.b.c", 7); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, ok := d.GetNumber("a.b.c"); !ok || v != 7 {
		t.Fatalf("after Set, Get = %v,%v", v, ok)
	}
}

func TestSetIntoArray(t *testing.T) {
	d := MustFromJSON(`{"arr":[{"x":1},{"x":2}]}`)
	if err := d.Set("arr.1.x", 99); err != nil {
		t.Fatalf("Set into array: %v", err)
	}
	if v, _ := d.GetNumber("arr.1.x"); v != 99 {
		t.Fatalf("got %v", v)
	}
	if err := d.Set("arr.9.x", 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSetThroughScalarFails(t *testing.T) {
	d := MustFromJSON(`{"s":"hello"}`)
	if err := d.Set("s.inner", 1); err == nil {
		t.Fatal("expected error setting through scalar")
	}
}

func TestDelete(t *testing.T) {
	d := MustFromJSON(`{"a":{"b":1,"c":2}}`)
	d.Delete("a.b")
	if d.Has("a.b") {
		t.Fatal("a.b should be deleted")
	}
	if !d.Has("a.c") {
		t.Fatal("a.c should survive")
	}
	d.Delete("nope.nope") // no-op
}

func TestCloneIsDeep(t *testing.T) {
	d := MustFromJSON(`{"a":{"b":[1,2,3]}}`)
	c := d.Clone()
	if err := c.Set("a.b.0", 99); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, _ := d.GetNumber("a.b.0"); v != 1 {
		t.Fatalf("clone mutated original: %v", v)
	}
	var nilDoc Doc
	if nilDoc.Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(map[string]any{"i": 5, "f": float32(1.5), "arr": []any{int64(2)}, "ss": []string{"a"}})
	m := v.(map[string]any)
	if m["i"] != float64(5) {
		t.Errorf("int not normalized: %T", m["i"])
	}
	if m["f"] != float64(1.5) {
		t.Errorf("float32 not normalized: %v", m["f"])
	}
	if m["arr"].([]any)[0] != float64(2) {
		t.Errorf("nested int64 not normalized")
	}
	if m["ss"].([]any)[0] != "a" {
		t.Errorf("[]string not normalized")
	}
}

func TestCompareTypeOrder(t *testing.T) {
	// null < number < string < object < array < bool
	ordered := []any{nil, float64(1), "a", map[string]any{}, []any{}, false}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := cmpInt(i, j)
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareWithinTypes(t *testing.T) {
	if Compare(float64(1), float64(2)) != -1 {
		t.Error("1 < 2")
	}
	if Compare("b", "a") != 1 {
		t.Error("b > a")
	}
	if Compare(true, false) != 1 {
		t.Error("true > false")
	}
	if Compare([]any{1.0, 2.0}, []any{1.0, 2.0, 3.0}) != -1 {
		t.Error("shorter array sorts first on prefix match")
	}
	if Compare(map[string]any{"a": 1.0}, map[string]any{"a": 2.0}) != -1 {
		t.Error("object value compare")
	}
	if Compare(map[string]any{"a": 1.0}, map[string]any{"b": 1.0}) != -1 {
		t.Error("object key compare")
	}
	if Compare(int(3), float64(3)) != 0 {
		t.Error("int/float64 numeric equality")
	}
}

func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() any { return randomValue(rng, 3) }
	for i := 0; i < 500; i++ {
		a, b, c := gen(), gen(), gen()
		// antisymmetry
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		// reflexivity
		if Compare(a, a) != 0 {
			t.Fatalf("reflexivity violated for %v", a)
		}
		// transitivity (weak check)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v, %v, %v", a, b, c)
		}
	}
}

func randomValue(rng *rand.Rand, depth int) any {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return rng.Float64() * 100
		case 2:
			return string(rune('a' + rng.Intn(26)))
		default:
			return rng.Intn(2) == 0
		}
	}
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1:
		return rng.Float64() * 100
	case 2:
		return string(rune('a' + rng.Intn(26)))
	case 3:
		return rng.Intn(2) == 0
	case 4:
		n := rng.Intn(3)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomValue(rng, depth-1)
		}
		return arr
	default:
		n := rng.Intn(3)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[string(rune('a'+rng.Intn(5)))] = randomValue(rng, depth-1)
		}
		return m
	}
}

func TestSetGetQuickProperty(t *testing.T) {
	// For any generated simple key and float value, Set then Get returns it.
	f := func(key uint8, val float64) bool {
		k := "k" + string(rune('a'+int(key)%26))
		d := New()
		if err := d.Set(k, val); err != nil {
			return false
		}
		got, ok := d.GetNumber(k)
		return ok && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldsSorted(t *testing.T) {
	d := MustFromJSON(`{"z":1,"a":2,"m":3}`)
	got := d.Fields()
	want := []string{"a", "m", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fields = %v", got)
	}
}

func TestCloneNestedDocType(t *testing.T) {
	inner := Doc{"x": float64(1)}
	d := Doc{"inner": inner}
	c := d.Clone()
	m, ok := c["inner"].(map[string]any)
	if !ok {
		t.Fatalf("nested Doc should clone to map[string]any, got %T", c["inner"])
	}
	m["x"] = float64(2)
	if inner["x"] != float64(1) {
		t.Fatal("clone shares nested Doc")
	}
}

func TestStringAndMustFromJSON(t *testing.T) {
	d := MustFromJSON(`{"a":1}`)
	if d.String() != `{"a":1}` {
		t.Fatalf("String = %q", d.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromJSON should panic on bad input")
		}
	}()
	MustFromJSON(`{"broken`)
}

func TestNormalizeAllIntWidths(t *testing.T) {
	cases := []any{
		int8(1), int16(2), int32(3), int64(4),
		uint(5), uint8(6), uint16(7), uint32(8), uint64(9),
	}
	for _, v := range cases {
		n := Normalize(v)
		if _, ok := n.(float64); !ok {
			t.Errorf("Normalize(%T) = %T", v, n)
		}
	}
	// []float64 passthrough
	fs := Normalize([]float64{1.5, 2.5}).([]any)
	if fs[0] != 1.5 {
		t.Fatalf("[]float64: %v", fs)
	}
	// Doc value
	m := Normalize(Doc{"k": 7}).(map[string]any)
	if m["k"] != float64(7) {
		t.Fatalf("Doc normalize: %v", m)
	}
	// struct fallback round-trips through JSON
	type pt struct{ X int }
	out := Normalize(pt{X: 3}).(map[string]any)
	if out["X"] != float64(3) {
		t.Fatalf("struct fallback: %v", out)
	}
}

func TestNormalizeDoc(t *testing.T) {
	d := NormalizeDoc(Doc{"i": 5, "nested": map[string]any{"j": int64(6)}})
	if d["i"] != float64(5) {
		t.Fatalf("i = %v", d["i"])
	}
	if d.GetDoc("nested")["j"] != float64(6) {
		t.Fatalf("nested = %v", d["nested"])
	}
}

func TestGetNumberIntVariants(t *testing.T) {
	d := Doc{"a": int(3), "b": int64(4)}
	if v, ok := d.GetNumber("a"); !ok || v != 3 {
		t.Fatalf("int: %v %v", v, ok)
	}
	if v, ok := d.GetNumber("b"); !ok || v != 4 {
		t.Fatalf("int64: %v %v", v, ok)
	}
	if _, ok := d.GetNumber("missing"); ok {
		t.Fatal("missing path")
	}
}

func TestGetDocOnDocValue(t *testing.T) {
	inner := Doc{"x": 1.0}
	d := Doc{"inner": inner}
	if got := d.GetDoc("inner"); got == nil || got["x"] != 1.0 {
		t.Fatalf("GetDoc(Doc) = %v", got)
	}
	if d.GetDoc("missing") != nil {
		t.Fatal("missing GetDoc")
	}
}

func TestSetEmptyPath(t *testing.T) {
	d := New()
	if err := d.Set("", 1); err == nil {
		t.Fatal("empty path should error")
	}
}

func TestDeleteEmptyPath(t *testing.T) {
	d := MustFromJSON(`{"a":1}`)
	d.Delete("") // no-op, no panic
	if !d.Has("a") {
		t.Fatal("delete of empty path mutated doc")
	}
}

func TestCompareNumericMixedTypes(t *testing.T) {
	if Compare(int64(5), float64(5)) != 0 {
		t.Fatal("int64 vs float64")
	}
	if Compare(int(3), int64(4)) != -1 {
		t.Fatal("int vs int64")
	}
}
