// Package features implements §3.2 and §3.5 of the paper: the
// frequency-cut vocabulary that defines the term feature space (100K
// terms at paper scale), and the 7-component positional feature vector
// {f1..f7} extracted per table row for the SVM metadata classifier:
//
//	f1  the row text with numeric substitutions applied (§3.4)
//	f2  the number of cells in the row
//	f3  whether a row above exists
//	f4  whether a row below exists
//	f5  the number of cells in the row above
//	f6  the number of cells in the row below
//	f7  the metadata label (NULL/-1 for unlabeled instances)
package features

import (
	"sort"
	"strings"

	"covidkg/internal/preprocess"
	"covidkg/internal/textproc"
)

// Vocabulary is a closed term set built by sorting corpus terms by
// frequency and cutting off noise (§3.2). Term ids are dense and stable.
type Vocabulary struct {
	Index map[string]int
	Terms []string
}

// BuildVocabulary tokenizes, stems, stopword-filters, and frequency-ranks
// the corpus texts, keeping at most maxTerms terms. The §3.4 substitution
// keywords are always included so numeric categories survive the cut.
func BuildVocabulary(texts []string, maxTerms int) *Vocabulary {
	counts := map[string]int{}
	for _, txt := range texts {
		for _, term := range textproc.ContentWords(preprocess.Substitute(txt)) {
			counts[term]++
		}
	}
	type tc struct {
		term string
		n    int
	}
	ranked := make([]tc, 0, len(counts))
	for t, n := range counts {
		ranked = append(ranked, tc{t, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].term < ranked[j].term
	})

	v := &Vocabulary{Index: map[string]int{}}
	add := func(term string) {
		if _, ok := v.Index[term]; ok {
			return
		}
		v.Index[term] = len(v.Terms)
		v.Terms = append(v.Terms, term)
	}
	// substitution keywords are part of the feature space by construction
	for _, k := range preprocess.Keywords {
		add(strings.ToLower(k))
	}
	for _, r := range ranked {
		if maxTerms > 0 && len(v.Terms) >= maxTerms {
			break
		}
		add(r.term)
	}
	return v
}

// Size returns the number of vocabulary terms.
func (v *Vocabulary) Size() int { return len(v.Terms) }

// Has reports whether the term is in the vocabulary.
func (v *Vocabulary) Has(term string) bool {
	_, ok := v.Index[term]
	return ok
}

// BoW maps a text (after §3.4 substitution) to its term-frequency vector
// over the vocabulary.
func (v *Vocabulary) BoW(text string) []float64 {
	out := make([]float64, len(v.Terms))
	for _, term := range textproc.ContentWords(preprocess.Substitute(text)) {
		if id, ok := v.Index[term]; ok {
			out[id]++
		}
	}
	return out
}

// Labels for f7.
const (
	LabelData     = 0
	LabelMetadata = 1
	LabelUnknown  = -1
)

// RowFeatures is the positional feature tuple of one table row.
type RowFeatures struct {
	Text       string // f1
	NumCells   int    // f2
	HasAbove   bool   // f3
	HasBelow   bool   // f4
	CellsAbove int    // f5
	CellsBelow int    // f6
	Label      int    // f7
	RowIdx     int    // position within the source table (context, not a paper feature)
}

// countCells counts non-empty cells; padded rectangles make the raw
// column count uninformative.
func countCells(row []string) int {
	n := 0
	for _, c := range row {
		if strings.TrimSpace(c) != "" {
			n++
		}
	}
	return n
}

// ExtractRows computes the feature tuple of every row of a table. labels
// may be nil (every f7 becomes LabelUnknown) or must align with rows.
func ExtractRows(rows [][]string, labels []bool) []RowFeatures {
	out := make([]RowFeatures, len(rows))
	for i, row := range rows {
		f := RowFeatures{
			Text:     strings.Join(preprocess.SubstituteCells(row), " "),
			NumCells: countCells(row),
			HasAbove: i > 0,
			HasBelow: i < len(rows)-1,
			RowIdx:   i,
			Label:    LabelUnknown,
		}
		if i > 0 {
			f.CellsAbove = countCells(rows[i-1])
		}
		if i < len(rows)-1 {
			f.CellsBelow = countCells(rows[i+1])
		}
		if labels != nil {
			if labels[i] {
				f.Label = LabelMetadata
			} else {
				f.Label = LabelData
			}
		}
		out[i] = f
	}
	return out
}

// PositionalVector encodes f2..f6 as normalized numeric features. Cell
// counts are scaled by 1/16 (wider tables are rare) so they live on the
// same order of magnitude as the binary features.
func (f RowFeatures) PositionalVector() []float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	const cellScale = 1.0 / 16
	return []float64{
		float64(f.NumCells) * cellScale,
		b(f.HasAbove),
		b(f.HasBelow),
		float64(f.CellsAbove) * cellScale,
		float64(f.CellsBelow) * cellScale,
	}
}

// Vector builds the full SVM input: the bag-of-words encoding of f1 over
// the vocabulary, concatenated with the positional features f2..f6.
func (f RowFeatures) Vector(v *Vocabulary) []float64 {
	bow := v.BoW(f.Text)
	return append(bow, f.PositionalVector()...)
}

// VectorDim returns the dimensionality Vector produces for vocabulary v.
func VectorDim(v *Vocabulary) int { return v.Size() + 5 }
