package features

import (
	"strings"
	"testing"

	"covidkg/internal/cord19"
	"covidkg/internal/textproc"
)

func TestBuildVocabularyFrequencyOrder(t *testing.T) {
	texts := []string{
		"vaccine vaccine vaccine fever fever mask",
		"vaccine fever",
	}
	v := BuildVocabulary(texts, 0)
	// substitution keywords come first; corpus terms follow by frequency
	vaccID := v.Index[textproc.Stem("vaccine")]
	fevID := v.Index[textproc.Stem("fever")]
	maskID := v.Index[textproc.Stem("mask")]
	if !(vaccID < fevID && fevID < maskID) {
		t.Fatalf("frequency order violated: vaccine=%d fever=%d mask=%d", vaccID, fevID, maskID)
	}
}

func TestBuildVocabularyCutoff(t *testing.T) {
	texts := []string{"alpha beta gamma delta epsilon zeta eta theta"}
	nKeywords := len(BuildVocabulary(nil, 0).Terms)
	v := BuildVocabulary(texts, nKeywords+3)
	if v.Size() != nKeywords+3 {
		t.Fatalf("size = %d, want %d", v.Size(), nKeywords+3)
	}
}

func TestVocabularyKeywordsAlwaysPresent(t *testing.T) {
	v := BuildVocabulary([]string{"some text"}, 5)
	for _, k := range []string{"zero", "range", "int", "percent"} {
		if !v.Has(k) {
			t.Errorf("keyword %q missing", k)
		}
	}
}

func TestVocabularyStopwordsExcluded(t *testing.T) {
	v := BuildVocabulary([]string{"the and of vaccine"}, 0)
	if v.Has("the") || v.Has("and") {
		t.Fatal("stopwords in vocabulary")
	}
	if !v.Has(textproc.Stem("vaccine")) {
		t.Fatal("content word missing")
	}
}

func TestBoW(t *testing.T) {
	v := BuildVocabulary([]string{"vaccine fever mask"}, 0)
	bow := v.BoW("vaccine vaccine fever")
	if got := bow[v.Index[textproc.Stem("vaccine")]]; got != 2 {
		t.Fatalf("vaccine tf = %v", got)
	}
	if got := bow[v.Index[textproc.Stem("fever")]]; got != 1 {
		t.Fatalf("fever tf = %v", got)
	}
	if got := bow[v.Index[textproc.Stem("mask")]]; got != 0 {
		t.Fatalf("mask tf = %v", got)
	}
	// numeric content maps onto substitution keywords
	bow = v.BoW("5 patients with 8.5% prevalence")
	if got := bow[v.Index["int"]]; got != 1 {
		t.Fatalf("INT tf = %v", got)
	}
	if got := bow[v.Index["percent"]]; got != 1 {
		t.Fatalf("PERCENT tf = %v", got)
	}
}

func TestExtractRowsPositional(t *testing.T) {
	rows := [][]string{
		{"Vaccine", "Dose", "Fever %"},
		{"Pfizer", "1", "8.5"},
		{"Moderna", "", "15.2"},
	}
	labels := []bool{true, false, false}
	fs := ExtractRows(rows, labels)
	if len(fs) != 3 {
		t.Fatalf("rows = %d", len(fs))
	}
	top := fs[0]
	if top.HasAbove || !top.HasBelow {
		t.Fatalf("top row flags: %+v", top)
	}
	if top.NumCells != 3 || top.CellsAbove != 0 || top.CellsBelow != 3 {
		t.Fatalf("top row counts: %+v", top)
	}
	if top.Label != LabelMetadata {
		t.Fatalf("top label = %d", top.Label)
	}
	mid := fs[1]
	if !mid.HasAbove || !mid.HasBelow || mid.CellsAbove != 3 || mid.CellsBelow != 2 {
		t.Fatalf("mid row: %+v", mid)
	}
	if mid.Label != LabelData {
		t.Fatalf("mid label = %d", mid.Label)
	}
	bot := fs[2]
	if bot.HasBelow || bot.NumCells != 2 {
		t.Fatalf("bottom row: %+v", bot)
	}
}

func TestExtractRowsSubstitutesNumbers(t *testing.T) {
	fs := ExtractRows([][]string{{"8.5%", "5-10 mg"}}, nil)
	if !strings.Contains(fs[0].Text, "PERCENT") || !strings.Contains(fs[0].Text, "RANGE") {
		t.Fatalf("f1 = %q", fs[0].Text)
	}
	if fs[0].Label != LabelUnknown {
		t.Fatalf("unlabeled f7 = %d", fs[0].Label)
	}
}

func TestPositionalVector(t *testing.T) {
	f := RowFeatures{NumCells: 4, HasAbove: true, HasBelow: false, CellsAbove: 3, CellsBelow: 0}
	v := f.PositionalVector()
	if len(v) != 5 {
		t.Fatalf("len = %d", len(v))
	}
	if v[0] != 4.0/16 || v[1] != 1 || v[2] != 0 || v[3] != 3.0/16 || v[4] != 0 {
		t.Fatalf("vector = %v", v)
	}
}

func TestVectorDimension(t *testing.T) {
	v := BuildVocabulary([]string{"vaccine fever"}, 0)
	f := ExtractRows([][]string{{"vaccine", "2"}}, nil)[0]
	vec := f.Vector(v)
	if len(vec) != VectorDim(v) {
		t.Fatalf("dim = %d, want %d", len(vec), VectorDim(v))
	}
}

func TestFeaturesSeparateGeneratedMetadata(t *testing.T) {
	// Sanity: on generated tables, metadata rows should on average carry
	// fewer numeric-substitution keywords than data rows — the signal the
	// SVM learns from f1.
	g := cord19.NewGenerator(5)
	v := BuildVocabulary([]string{"placeholder"}, 0)
	var keywordIDs []int
	for _, kw := range []string{"zero", "range", "neg", "smallpos", "float", "int", "percent", "time", "ml", "mg", "kg"} {
		if id, ok := v.Index[kw]; ok {
			keywordIDs = append(keywordIDs, id)
		}
	}
	var metaNum, metaN, dataNum, dataN float64
	for _, lt := range g.LabeledTables(100, 1.0) {
		for _, f := range ExtractRows(lt.Rows, lt.Meta) {
			bow := v.BoW(f.Text)
			score := 0.0
			for _, id := range keywordIDs {
				score += bow[id]
			}
			if f.Label == LabelMetadata {
				metaNum += score
				metaN++
			} else {
				dataNum += score
				dataN++
			}
		}
	}
	if metaNum/metaN >= dataNum/dataN {
		t.Fatalf("metadata rows look as numeric as data rows: %v vs %v",
			metaNum/metaN, dataNum/dataN)
	}
}
