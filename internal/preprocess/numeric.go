// Package preprocess implements the numeric substitution grammar of §3.4
// of the COVIDKG paper. Table cells are rewritten so that all numeric
// content collapses onto a small set of category keywords before being
// fed to the classifiers; this keeps the vocabulary finite and lets the
// models generalize over magnitudes instead of memorizing literals.
//
// The substitution categories, in application order (order is load-bearing
// — the paper notes "0 in 50 is not the same as 0.0"):
//
//	DATE      dates whose month is written in words ("5 January 2021");
//	          numeric forms like mm/dd/yy are deliberately not handled
//	RANGE     arithmetic ranges ("5-10"); units after the range survive
//	TIME/ML/MG/KG  numbers followed by the four most frequent units
//	PERCENT   the % sign; the preceding number keeps its own class, so
//	          "5%" becomes "INT PERCENT" and "0.5%" "SMALLPOS PERCENT"
//	LESS/GREATER   the < and > comparison symbols
//	ZERO      all zeros, in both integer and decimal form (0, 0.0, .0)
//	NEG       negative integers (only true numbers, not hyphenated words)
//	SMALLPOS  positive numbers strictly between 0 and 1
//	FLOAT     non-integer numbers >= 1
//	INT       integer numbers >= 1 (no upper binning; the paper observed
//	          no pattern in upper limits)
package preprocess

import (
	"regexp"
	"strconv"
	"strings"
)

// Category keywords emitted by Substitute.
const (
	KwZero     = "ZERO"
	KwRange    = "RANGE"
	KwNeg      = "NEG"
	KwSmallPos = "SMALLPOS"
	KwFloat    = "FLOAT"
	KwInt      = "INT"
	KwPercent  = "PERCENT"
	KwDate     = "DATE"
	KwLess     = "LESS"
	KwGreater  = "GREATER"
	KwTime     = "TIME"
	KwML       = "ML"
	KwMG       = "MG"
	KwKG       = "KG"
)

// Keywords lists every keyword Substitute can emit; the vocabulary
// builder seeds itself with these so they are never cut off.
var Keywords = []string{
	KwZero, KwRange, KwNeg, KwSmallPos, KwFloat, KwInt,
	KwPercent, KwDate, KwLess, KwGreater, KwTime, KwML, KwMG, KwKG,
}

const monthAlt = `(?:jan(?:uary)?|feb(?:ruary)?|mar(?:ch)?|apr(?:il)?|may|jun(?:e)?|jul(?:y)?|aug(?:ust)?|sep(?:t(?:ember)?)?|oct(?:ober)?|nov(?:ember)?|dec(?:ember)?)`

var (
	// "5 January 2021", "January 5, 2021", "Jan 2021"
	reDateDayFirst   = regexp.MustCompile(`(?i)\b\d{1,2}(?:st|nd|rd|th)?\s+` + monthAlt + `\.?,?(?:\s+\d{2,4})?\b`)
	reDateMonthFirst = regexp.MustCompile(`(?i)\b` + monthAlt + `\.?\s+\d{1,2}(?:st|nd|rd|th)?(?:\s*,?\s*\d{2,4})?\b`)
	reDateMonthYear  = regexp.MustCompile(`(?i)\b` + monthAlt + `\.?\s+\d{4}\b`)

	// "5-10", "5 - 10", "0.5–2.5" (hyphen, en dash, or the word "to"
	// between two numbers)
	reRange = regexp.MustCompile(`\b\d+(?:\.\d+)?\s*(?:[-–—]|to)\s*\d+(?:\.\d+)?\b`)

	// number + frequent unit
	reUnitTime = regexp.MustCompile(`(?i)\b\d+(?:\.\d+)?\s*(?:h|hr|hrs|hours?|min|mins|minutes?|s|sec|secs|seconds?|d|days?|wk|wks|weeks?|mo|months?|yr|yrs|years?)\b`)
	reUnitML   = regexp.MustCompile(`(?i)\b\d+(?:\.\d+)?\s*(?:ml|mls|milliliters?|millilitres?|µl|ul)\b`)
	reUnitMG   = regexp.MustCompile(`(?i)\b\d+(?:\.\d+)?\s*(?:mg|mgs|milligrams?|µg|ug|mcg)\b`)
	reUnitKG   = regexp.MustCompile(`(?i)\b\d+(?:\.\d+)?\s*(?:kg|kgs|kilograms?)\b`)

	// a number followed by the percent sign
	rePercent = regexp.MustCompile(`(-?\d+(?:\.\d+)?)\s*%`)

	// a standalone number (optionally signed); word boundaries guarded
	// manually so hyphenated words ("COVID-19") are not split
	reNumber = regexp.MustCompile(`-?\d+(?:\.\d+)?`)
)

// classifyNumber maps a numeric literal to its §3.4 keyword.
func classifyNumber(lit string) string {
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return KwInt
	}
	isInt := !strings.Contains(lit, ".")
	switch {
	case f == 0:
		return KwZero
	case f < 0:
		// The paper replaces negative integers with NEG; negative
		// decimals fall in the same bucket for lack of a finer rule.
		return KwNeg
	case f < 1:
		return KwSmallPos
	case isInt:
		return KwInt
	default:
		return KwFloat
	}
}

// numberAt reports whether the match at [start,end) is a true standalone
// number: a leading '-' counts as a sign only when not preceded by a
// letter or digit (so "COVID-19" keeps its 19 attached... it is preceded
// by a letter, meaning "-19" is not a negative number there), and the
// match must not be embedded in a word.
func isStandalone(s string, start, end int) bool {
	if start > 0 {
		prev := s[start-1]
		if isWordByte(prev) {
			return false
		}
		// "-19" inside "COVID-19": the '-' is preceded by a letter.
		if s[start] == '-' {
			// already handled: prev is not a word byte here
		}
	}
	if end < len(s) && isWordByte(s[end]) {
		return false
	}
	return true
}

func isWordByte(b byte) bool {
	return b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// Substitute rewrites one cell or phrase of table text per §3.4 and
// returns the normalized form. Non-numeric text passes through
// unchanged (aside from whitespace normalization around replacements).
func Substitute(s string) string {
	// 1. dates with worded months
	s = reDateDayFirst.ReplaceAllString(s, KwDate)
	s = reDateMonthFirst.ReplaceAllString(s, KwDate)
	s = reDateMonthYear.ReplaceAllString(s, KwDate)

	// 2. ranges, before single numbers so "5-10" never reads as 5 then -10
	s = reRange.ReplaceAllString(s, KwRange)

	// 3. numbers followed by the dominant units collapse to unit keywords
	s = reUnitML.ReplaceAllString(s, KwML)
	s = reUnitMG.ReplaceAllString(s, KwMG)
	s = reUnitKG.ReplaceAllString(s, KwKG)
	s = reUnitTime.ReplaceAllString(s, KwTime)

	// 4. percentages keep the magnitude class of their number
	s = rePercent.ReplaceAllStringFunc(s, func(m string) string {
		sub := rePercent.FindStringSubmatch(m)
		return classifyNumber(sub[1]) + " " + KwPercent
	})

	// 5. comparison symbols
	s = strings.ReplaceAll(s, "<", " "+KwLess+" ")
	s = strings.ReplaceAll(s, ">", " "+KwGreater+" ")

	// 6. remaining standalone numbers, classified by magnitude
	s = replaceStandaloneNumbers(s)

	return strings.Join(strings.Fields(s), " ")
}

func replaceStandaloneNumbers(s string) string {
	locs := reNumber.FindAllStringIndex(s, -1)
	if locs == nil {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	prev := 0
	for _, loc := range locs {
		start, end := loc[0], loc[1]
		if !isStandalone(s, start, end) {
			continue
		}
		lit := s[start:end]
		// A '-' preceded by a non-space, non-start byte is a connector
		// ("pp. 10-12" was already collapsed by RANGE; "x-3" keeps the 3).
		if lit[0] == '-' && start > 0 && s[start-1] != ' ' && s[start-1] != '(' && s[start-1] != '\t' {
			start++
			lit = lit[1:]
		}
		b.WriteString(s[prev:start])
		b.WriteString(classifyNumber(lit))
		prev = end
	}
	b.WriteString(s[prev:])
	return b.String()
}

// SubstituteCells applies Substitute to every cell of a table row.
func SubstituteCells(row []string) []string {
	out := make([]string, len(row))
	for i, c := range row {
		out[i] = Substitute(c)
	}
	return out
}
