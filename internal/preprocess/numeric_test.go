package preprocess

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSubstituteZeroForms(t *testing.T) {
	cases := map[string]string{
		"0":    "ZERO",
		"0.0":  "ZERO",
		"0.00": "ZERO",
		"50":   "INT", // the 0 in 50 is not ZERO — order matters (§3.4)
	}
	for in, want := range cases {
		if got := Substitute(in); got != want {
			t.Errorf("Substitute(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSubstituteRangeKeepsUnits(t *testing.T) {
	got := Substitute("5-10 mg")
	// the range collapses, the unit survives as a following word (the
	// paper: "we have not replaced the units following the range")
	if got != "RANGE mg" {
		t.Fatalf("Substitute(5-10 mg) = %q", got)
	}
	if got := Substitute("0.5–2.5"); got != "RANGE" {
		t.Fatalf("en-dash range = %q", got)
	}
	if got := Substitute("5 to 10"); got != "RANGE" {
		t.Fatalf("worded range = %q", got)
	}
}

func TestSubstituteNegatives(t *testing.T) {
	if got := Substitute("-5"); got != "NEG" {
		t.Fatalf("Substitute(-5) = %q", got)
	}
	// hyphenated words must not become NEG
	if got := Substitute("COVID-19"); got != "COVID-19" {
		t.Fatalf("Substitute(COVID-19) = %q", got)
	}
	if got := Substitute("double-blind"); got != "double-blind" {
		t.Fatalf("Substitute(double-blind) = %q", got)
	}
}

func TestSubstituteMagnitudeClasses(t *testing.T) {
	cases := map[string]string{
		"0.5":     "SMALLPOS",
		"0.001":   "SMALLPOS",
		"1":       "INT",
		"42":      "INT",
		"1000000": "INT",
		"1.5":     "FLOAT",
		"3.14159": "FLOAT",
	}
	for in, want := range cases {
		if got := Substitute(in); got != want {
			t.Errorf("Substitute(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSubstitutePercent(t *testing.T) {
	// §3.4: 5% and 0.5% are NOT replaced the same way
	if got := Substitute("5%"); got != "INT PERCENT" {
		t.Fatalf("Substitute(5%%) = %q", got)
	}
	if got := Substitute("0.5%"); got != "SMALLPOS PERCENT" {
		t.Fatalf("Substitute(0.5%%) = %q", got)
	}
	if got := Substitute("12.7 %"); got != "FLOAT PERCENT" {
		t.Fatalf("Substitute(12.7 %%) = %q", got)
	}
}

func TestSubstituteDates(t *testing.T) {
	for _, in := range []string{
		"5 January 2021",
		"January 5, 2021",
		"Jan 2021",
		"March 2020",
		"3rd December 2020",
	} {
		if got := Substitute(in); got != "DATE" {
			t.Errorf("Substitute(%q) = %q, want DATE", in, got)
		}
	}
	// mm/dd/yy is explicitly not handled by the paper: digits remain,
	// classified individually.
	got := Substitute("12/31/20")
	if strings.Contains(got, "DATE") {
		t.Errorf("numeric date should not become DATE: %q", got)
	}
}

func TestSubstituteComparisons(t *testing.T) {
	if got := Substitute("<5"); got != "LESS INT" {
		t.Fatalf("Substitute(<5) = %q", got)
	}
	if got := Substitute("p > 0.05"); got != "p GREATER SMALLPOS" {
		t.Fatalf("Substitute(p > 0.05) = %q", got)
	}
}

func TestSubstituteUnits(t *testing.T) {
	cases := map[string]string{
		"5 mg":     "MG",
		"5mg":      "MG",
		"10 ml":    "ML",
		"70 kg":    "KG",
		"24 hours": "TIME",
		"30 min":   "TIME",
		"7 days":   "TIME",
		"2 weeks":  "TIME",
	}
	for in, want := range cases {
		if got := Substitute(in); got != want {
			t.Errorf("Substitute(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSubstituteMixedSentence(t *testing.T) {
	in := "Patients received 5-10 mg twice, fever in 12.5% of cases after 7 days, onset 5 January 2021, n=42"
	got := Substitute(in)
	for _, want := range []string{"RANGE", "FLOAT PERCENT", "TIME", "DATE", "INT"} {
		if !strings.Contains(got, want) {
			t.Errorf("Substitute(%q) = %q missing %q", in, got, want)
		}
	}
	// no raw digits should survive
	for _, r := range got {
		if r >= '0' && r <= '9' {
			t.Fatalf("raw digit survived: %q", got)
		}
	}
}

func TestSubstitutePlainTextUntouched(t *testing.T) {
	for _, in := range []string{"Vaccine", "side effects", "Pfizer/BioNTech"} {
		if got := Substitute(in); got != in {
			t.Errorf("Substitute(%q) = %q, want unchanged", in, got)
		}
	}
}

func TestSubstituteIdempotentProperty(t *testing.T) {
	inputs := []string{
		"5-10 mg", "0.5%", "<5", "42", "-7", "5 January 2021",
		"fever 38.5", "dose 2", "0.0", "p > 0.05", "7 days",
	}
	for _, in := range inputs {
		once := Substitute(in)
		twice := Substitute(once)
		if once != twice {
			t.Errorf("not idempotent on %q: %q -> %q", in, once, twice)
		}
	}
}

func TestSubstituteNoDigitsQuick(t *testing.T) {
	// Property: after substitution, any remaining digit must be part of a
	// hyphenated identifier (letter-adjacent), never a standalone number.
	f := func(a, b uint16) bool {
		in := "count " + itoa(int(a)) + " and " + itoa(int(b))
		out := Substitute(in)
		for _, r := range out {
			if r >= '0' && r <= '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSubstituteCells(t *testing.T) {
	row := []string{"Pfizer", "2 doses", "85%", "5-10 mg"}
	got := SubstituteCells(row)
	want := []string{"Pfizer", "INT doses", "INT PERCENT", "RANGE mg"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestKeywordsListComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Keywords {
		seen[k] = true
	}
	for _, k := range []string{"ZERO", "RANGE", "NEG", "SMALLPOS", "FLOAT", "INT", "PERCENT", "DATE", "LESS", "GREATER", "TIME", "ML", "MG", "KG"} {
		if !seen[k] {
			t.Errorf("keyword %s missing from Keywords", k)
		}
	}
}
