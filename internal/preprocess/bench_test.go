package preprocess

import "testing"

func BenchmarkSubstitute(b *testing.B) {
	cell := "Patients received 5-10 mg twice, fever in 12.5% after 7 days, onset 5 January 2021, n=42, p < 0.05"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Substitute(cell)
	}
}

func BenchmarkSubstitutePlain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Substitute("vaccine side effects by manufacturer")
	}
}
