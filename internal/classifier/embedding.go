package classifier

import (
	"math/rand"

	"covidkg/internal/embeddings"
	"covidkg/internal/mlcore"
)

// padID marks padding/out-of-vocabulary positions; their embedding is a
// frozen zero vector.
const padID = -1

// EmbeddingLayer is a trainable token-embedding lookup, initialized from
// pre-trained Word2Vec vectors and fine-tuned end-to-end (§3.6: "we
// pre-trained on WDC and CORD-19 and then fine-tuned with end-to-end
// training on the target corpus").
type EmbeddingLayer struct {
	W      *mlcore.Param
	Vocab  map[string]int
	Dim    int
	MaxLen int

	lastIDs []int
}

// NewEmbeddingFromWord2Vec copies a trained Word2Vec table into a
// trainable layer.
func NewEmbeddingFromWord2Vec(w2v *embeddings.Word2Vec, maxLen int) *EmbeddingLayer {
	w := w2v.In.Clone()
	vocab := make(map[string]int, len(w2v.Vocab))
	for t, id := range w2v.Vocab {
		vocab[t] = id
	}
	return &EmbeddingLayer{
		W:      mlcore.NewParam("emb", w),
		Vocab:  vocab,
		Dim:    w2v.Dim,
		MaxLen: maxLen,
	}
}

// NewRandomEmbedding builds a randomly initialized layer (the
// no-pretraining ablation).
func NewRandomEmbedding(vocab map[string]int, dim, maxLen int, rng *rand.Rand) *EmbeddingLayer {
	return &EmbeddingLayer{
		W:      mlcore.NewParam("emb", mlcore.RandMatrix(len(vocab), dim, 0.1, rng)),
		Vocab:  vocab,
		Dim:    dim,
		MaxLen: maxLen,
	}
}

// encode maps tokens to ids, padding/truncating to MaxLen.
func (e *EmbeddingLayer) encode(tokens []string) []int {
	ids := make([]int, e.MaxLen)
	for i := range ids {
		ids[i] = padID
	}
	for i, t := range tokens {
		if i >= e.MaxLen {
			break
		}
		if id, ok := e.Vocab[t]; ok {
			ids[i] = id
		}
	}
	return ids
}

// Forward embeds a token sequence as a MaxLen×Dim matrix and caches the
// ids for Backward.
func (e *EmbeddingLayer) Forward(tokens []string) *mlcore.Matrix {
	ids := e.encode(tokens)
	e.lastIDs = ids
	out := mlcore.NewMatrix(e.MaxLen, e.Dim)
	for t, id := range ids {
		if id >= 0 {
			copy(out.Row(t), e.W.W.Row(id))
		}
	}
	return out
}

// Backward scatter-adds gradients into the embedding table for the ids
// of the most recent Forward.
func (e *EmbeddingLayer) Backward(d *mlcore.Matrix) {
	for t, id := range e.lastIDs {
		if id < 0 {
			continue
		}
		grow := e.W.Grad.Row(id)
		for c, v := range d.Row(t) {
			grow[c] += v
		}
	}
}

// Params exposes the embedding table for the optimizer.
func (e *EmbeddingLayer) Params() []*mlcore.Param { return []*mlcore.Param{e.W} }
