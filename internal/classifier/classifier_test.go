package classifier

import (
	"math"
	"testing"

	"covidkg/internal/cord19"
	"covidkg/internal/embeddings"
	"covidkg/internal/features"
	"covidkg/internal/svm"
)

func TestMetricsArithmetic(t *testing.T) {
	var m Metrics
	m.Add(1, 1) // TP
	m.Add(1, 0) // FP
	m.Add(0, 0) // TN
	m.Add(0, 1) // FN
	m.Add(1, 1) // TP
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if got := m.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", got)
	}
	if got := m.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	if got := m.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("f1 = %v", got)
	}
	if got := m.Accuracy(); math.Abs(got-3.0/5) > 1e-12 {
		t.Fatalf("acc = %v", got)
	}
}

func TestMetricsEmptyIsZero(t *testing.T) {
	var m Metrics
	if m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.Accuracy() != 0 {
		t.Fatal("empty metrics should be zero, not NaN")
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Metrics{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestKFoldSplit(t *testing.T) {
	folds := KFoldSplit(23, 10, 1)
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 23 {
		t.Fatalf("covered %d indices", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d in %d folds", i, n)
		}
	}
	// sizes within 1 of each other
	min, max := 100, 0
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > 1 {
		t.Fatalf("fold sizes %d..%d", min, max)
	}
	// k > n clamps
	if got := KFoldSplit(3, 10, 1); len(got) != 3 {
		t.Fatalf("clamped folds = %d", len(got))
	}
}

func TestCrossValidatePipeline(t *testing.T) {
	// a classifier that memorizes training labels and predicts 1 for
	// held-out even indices: CV must call train before predict per fold.
	labels := make([]int, 50)
	for i := range labels {
		if i%2 == 0 {
			labels[i] = 1
		}
	}
	trainCalls := 0
	results, pooled := CrossValidate(50, 5, 7,
		func(trainIdx []int) { trainCalls++ },
		func(i int) int { return labels[i] }, // oracle
		func(i int) int { return labels[i] },
	)
	if trainCalls != 5 || len(results) != 5 {
		t.Fatalf("train calls = %d, results = %d", trainCalls, len(results))
	}
	if pooled.Total() != 50 || pooled.Accuracy() != 1 {
		t.Fatalf("pooled = %+v", pooled)
	}
}

// buildSamples creates labeled tuple samples and word2vec models from
// synthetic tables.
func buildSamples(t *testing.T, nTables int, seed int64) ([]TupleSample, *embeddings.Word2Vec, *embeddings.Word2Vec) {
	t.Helper()
	g := cord19.NewGenerator(seed)
	tables := g.LabeledTables(nTables, 0.6)
	var samples []TupleSample
	var grids [][][]string
	for _, lt := range tables {
		samples = append(samples, SamplesFromTable(lt.Rows, lt.Meta)...)
		grids = append(grids, lt.Rows)
	}
	termSents, cellSents := embeddings.TableSentences(grids)
	cfg := embeddings.DefaultConfig()
	cfg.Dim = 12
	cfg.Epochs = 3
	cfg.MinCount = 1
	termW2V := embeddings.Train(termSents, cfg)
	cellW2V := embeddings.Train(cellSents, cfg)
	return samples, termW2V, cellW2V
}

func TestSamplesFromTable(t *testing.T) {
	rows := [][]string{{"Vaccine", "Fever %"}, {"Pfizer", "8.5"}}
	meta := []bool{true, false}
	samples := SamplesFromTable(rows, meta)
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Label != 1 || samples[1].Label != 0 {
		t.Fatalf("labels = %d,%d", samples[0].Label, samples[1].Label)
	}
	if len(samples[0].TermTokens) == 0 || len(samples[0].CellTokens) != 2 {
		t.Fatalf("tokens = %v / %v", samples[0].TermTokens, samples[0].CellTokens)
	}
}

func TestEnsembleLearnsMetadata(t *testing.T) {
	samples, termW2V, cellW2V := buildSamples(t, 60, 1)
	split := len(samples) * 4 / 5
	train, test := samples[:split], samples[split:]

	cfg := DefaultEnsembleConfig()
	cfg.Units = 8
	cfg.Epochs = 8
	m, err := NewEnsemble(termW2V, cellW2V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := m.Train(train)
	if len(stats.EpochLoss) != cfg.Epochs {
		t.Fatalf("epoch losses = %d", len(stats.EpochLoss))
	}
	if stats.EpochLoss[len(stats.EpochLoss)-1] > stats.EpochLoss[0]*0.8 {
		t.Fatalf("loss barely moved: %v", stats.EpochLoss)
	}
	mt := m.Evaluate(test)
	if mt.F1() < 0.75 {
		t.Fatalf("ensemble F1 = %v (%v)", mt.F1(), mt)
	}
}

func TestEnsembleLSTMVariant(t *testing.T) {
	samples, termW2V, cellW2V := buildSamples(t, 30, 2)
	cfg := DefaultEnsembleConfig()
	cfg.Cell = "lstm"
	cfg.Units = 6
	cfg.Epochs = 4
	m, err := NewEnsemble(termW2V, cellW2V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(samples)
	mt := m.Evaluate(samples)
	if mt.F1() < 0.7 {
		t.Fatalf("lstm train-set F1 = %v", mt.F1())
	}
}

func TestEnsembleRejectsUnknownCell(t *testing.T) {
	_, termW2V, cellW2V := buildSamples(t, 5, 3)
	cfg := DefaultEnsembleConfig()
	cfg.Cell = "transformer"
	if _, err := NewEnsemble(termW2V, cellW2V, cfg); err == nil {
		t.Fatal("expected error for unknown cell")
	}
}

func TestEnsemblePredictProbRange(t *testing.T) {
	samples, termW2V, cellW2V := buildSamples(t, 10, 4)
	cfg := DefaultEnsembleConfig()
	cfg.Units = 4
	cfg.Epochs = 2
	m, err := NewEnsemble(termW2V, cellW2V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(samples[:20])
	for _, s := range samples[:20] {
		p := m.PredictProb(s)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob = %v", p)
		}
	}
}

func TestSVMModelLearnsMetadata(t *testing.T) {
	g := cord19.NewGenerator(11)
	tables := g.LabeledTables(80, 0.6)
	var samples []SVMSample
	var texts []string
	for _, lt := range tables {
		samples = append(samples, SVMSamplesFromTable(lt.Rows, lt.Meta)...)
		for _, row := range lt.Rows {
			for _, c := range row {
				texts = append(texts, c)
			}
		}
	}
	vocab := features.BuildVocabulary(texts, 2000)
	m := NewSVMModel(vocab, svm.DefaultConfig())
	split := len(samples) * 4 / 5
	if err := m.Train(samples[:split]); err != nil {
		t.Fatal(err)
	}
	mt := m.Evaluate(samples[split:])
	if mt.F1() < 0.8 {
		t.Fatalf("svm F1 = %v (%v)", mt.F1(), mt)
	}
}

func TestSVMModelEmptyTrainingError(t *testing.T) {
	vocab := features.BuildVocabulary(nil, 10)
	m := NewSVMModel(vocab, svm.DefaultConfig())
	if err := m.Train(nil); err == nil {
		t.Fatal("expected error")
	}
	// untrained model predicts negative class rather than panicking
	f := features.ExtractRows([][]string{{"a"}}, nil)[0]
	if got := m.Predict(f); got != 0 {
		t.Fatalf("untrained predict = %d", got)
	}
}

func TestEnsembleCrossValidation(t *testing.T) {
	// a miniature version of the paper's 10-fold protocol (3 folds here
	// to keep the test fast)
	samples, termW2V, cellW2V := buildSamples(t, 24, 5)
	cfg := DefaultEnsembleConfig()
	cfg.Units = 4
	cfg.Epochs = 3
	var m *Ensemble
	_, pooled := CrossValidate(len(samples), 3, 1,
		func(trainIdx []int) {
			var err error
			m, err = NewEnsemble(termW2V, cellW2V, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := make([]TupleSample, len(trainIdx))
			for i, idx := range trainIdx {
				tr[i] = samples[idx]
			}
			m.Train(tr)
		},
		func(i int) int { return m.Predict(samples[i]) },
		func(i int) int { return samples[i].Label },
	)
	if pooled.Total() != len(samples) {
		t.Fatalf("pooled total = %d", pooled.Total())
	}
	if pooled.F1() < 0.6 {
		t.Fatalf("cv F1 = %v", pooled.F1())
	}
}

func TestEnsembleExportImportRoundTrip(t *testing.T) {
	samples, termW2V, cellW2V := buildSamples(t, 20, 9)
	cfg := DefaultEnsembleConfig()
	cfg.Units = 6
	cfg.Epochs = 3
	m, err := NewEnsemble(termW2V, cellW2V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(samples)

	data, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ImportEnsemble(data)
	if err != nil {
		t.Fatal(err)
	}
	// the imported model must predict identically
	for _, s := range samples[:30] {
		a, b := m.PredictProb(s), m2.PredictProb(s)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("prediction drift after import: %v vs %v", a, b)
		}
	}
	// and remain trainable (the paper's fine-tune path)
	stats := m2.Train(samples[:16])
	if len(stats.EpochLoss) == 0 {
		t.Fatal("imported model not trainable")
	}
}

func TestImportEnsembleErrors(t *testing.T) {
	if _, err := ImportEnsemble([]byte(`{"broken`)); err == nil {
		t.Fatal("bad json")
	}
	if _, err := ImportEnsemble([]byte(`{"config":{"Cell":"gru"},"term_dim":0,"cell_dim":4}`)); err == nil {
		t.Fatal("zero dims")
	}
}
