package classifier

import (
	"fmt"
	"math/rand"
	"time"

	"covidkg/internal/embeddings"
	"covidkg/internal/mlcore"
	"covidkg/internal/rnn"
)

// TupleSample is one classification instance: a table tuple in its two
// parallel token representations (Figure 3's term-wise and cell-wise
// inputs) plus its metadata label.
type TupleSample struct {
	TermTokens []string
	CellTokens []string
	Label      int // 1 metadata, 0 data
}

// SamplesFromTable converts a labeled table into tuple samples using the
// §3.4/§3.6 pre-processing (numeric substitution, term and cell
// tokenization). meta may be nil for unlabeled prediction inputs.
func SamplesFromTable(rows [][]string, meta []bool) []TupleSample {
	out := make([]TupleSample, len(rows))
	for i, row := range rows {
		s := TupleSample{
			TermTokens: embeddings.TermSentence(row),
			CellTokens: embeddings.CellSentence(row),
		}
		if meta != nil && meta[i] {
			s.Label = 1
		}
		out[i] = s
	}
	return out
}

// EnsembleConfig controls the Figure 3 model.
type EnsembleConfig struct {
	Cell       string  // "gru" (paper's choice) or "lstm" (ablation)
	Units      int     // BiRNN units per direction (paper: 100)
	MaxTerms   int     // term-sequence length after padding/truncation
	MaxCells   int     // cell-sequence length after padding/truncation
	DenseUnits int     // width of the head's dense layer (paper: 16)
	Dropout    float64 // head dropout probability
	LR         float64
	Epochs     int
	BatchSize  int
	Seed       int64
}

// DefaultEnsembleConfig returns a configuration scaled down from the
// paper's (100 GRU units) to sizes that train in seconds on synthetic
// corpora; benches scale it back up.
func DefaultEnsembleConfig() EnsembleConfig {
	return EnsembleConfig{
		Cell: "gru", Units: 16, MaxTerms: 24, MaxCells: 10,
		DenseUnits: 16, Dropout: 0.2, LR: 0.005, Epochs: 12,
		BatchSize: 16, Seed: 1,
	}
}

// Ensemble is the §3.6 BiGRU ensemble: two parallel paths (term-level
// and cell-level), each embedding its tokens, running a bidirectional
// RNN, and concatenating the contextual states with the original
// embeddings; the flattened path outputs are concatenated and classified
// by a dense-16 → batch-norm → dropout → dense-1 sigmoid head.
type Ensemble struct {
	cfg EnsembleConfig

	termEmb, cellEmb *EmbeddingLayer
	termRNN, cellRNN *rnn.Bidirectional
	head             *mlcore.Sequential

	params []*mlcore.Param
	rng    *rand.Rand
}

// NewEnsemble builds the model from pre-trained term- and cell-level
// Word2Vec embeddings.
func NewEnsemble(termW2V, cellW2V *embeddings.Word2Vec, cfg EnsembleConfig) (*Ensemble, error) {
	if cfg.Cell != "gru" && cfg.Cell != "lstm" {
		return nil, fmt.Errorf("classifier: unknown cell %q", cfg.Cell)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Ensemble{
		cfg:     cfg,
		termEmb: NewEmbeddingFromWord2Vec(termW2V, cfg.MaxTerms),
		cellEmb: NewEmbeddingFromWord2Vec(cellW2V, cfg.MaxCells),
		rng:     rng,
	}
	newBi := func(in int) *rnn.Bidirectional {
		if cfg.Cell == "lstm" {
			return rnn.NewBiLSTM(in, cfg.Units, rng)
		}
		return rnn.NewBiGRU(in, cfg.Units, rng)
	}
	m.termRNN = newBi(termW2V.Dim)
	m.cellRNN = newBi(cellW2V.Dim)

	termW := cfg.MaxTerms * (2*cfg.Units + termW2V.Dim)
	cellW := cfg.MaxCells * (2*cfg.Units + cellW2V.Dim)
	m.head = mlcore.NewSequential(
		mlcore.NewDense(termW+cellW, cfg.DenseUnits, rng),
		mlcore.NewBatchNorm(cfg.DenseUnits),
		mlcore.NewDropout(cfg.Dropout, rng),
		mlcore.NewDense(cfg.DenseUnits, 1, rng),
		&mlcore.SigmoidLayer{},
	)

	m.params = append(m.params, m.termEmb.Params()...)
	m.params = append(m.params, m.cellEmb.Params()...)
	m.params = append(m.params, m.termRNN.Params()...)
	m.params = append(m.params, m.cellRNN.Params()...)
	m.params = append(m.params, m.head.Params()...)
	return m, nil
}

// Params returns every trainable parameter.
func (m *Ensemble) Params() []*mlcore.Param { return m.params }

// pathWidth is the flattened width of one path.
func pathWidth(maxLen, units, dim int) int { return maxLen * (2*units + dim) }

// pathForward runs one path: embed → BiRNN → concat with embeddings →
// flatten. The caches needed for backward live inside emb and cell.
func pathForward(emb *EmbeddingLayer, cell *rnn.Bidirectional, tokens []string) *mlcore.Matrix {
	x := emb.Forward(tokens) // L×D
	h := cell.Forward(x)     // L×2H
	return mlcore.HStack(h, x).Flatten()
}

// pathBackward propagates a flattened gradient back through one path.
// Forward must have been called for the same tokens immediately before.
func pathBackward(emb *EmbeddingLayer, cell *rnn.Bidirectional, dFlat []float64, maxLen, units, dim int) {
	width := 2*units + dim
	d := mlcore.FromSlice(maxLen, width, dFlat)
	parts := mlcore.HSplit(d, 2*units, dim)
	dx := cell.Backward(parts[0])
	mlcore.AddInPlace(dx, parts[1]) // gradient through the skip concat
	emb.Backward(dx)
}

// featureVector computes the concatenated flat representation of one
// sample (both paths).
func (m *Ensemble) featureVector(s TupleSample) *mlcore.Matrix {
	t := pathForward(m.termEmb, m.termRNN, s.TermTokens)
	c := pathForward(m.cellEmb, m.cellRNN, s.CellTokens)
	return mlcore.HStack(t, c)
}

// TrainStats reports a training run.
type TrainStats struct {
	EpochLoss []float64
	Duration  time.Duration
}

// Train fits the model on samples with Adam, mini-batching at the head
// so batch normalization sees true batch statistics.
func (m *Ensemble) Train(samples []TupleSample) TrainStats {
	start := time.Now()
	opt := mlcore.NewAdam(m.cfg.LR)
	stats := TrainStats{}
	termW := pathWidth(m.cfg.MaxTerms, m.cfg.Units, m.termEmb.Dim)
	cellW := pathWidth(m.cfg.MaxCells, m.cfg.Units, m.cellEmb.Dim)

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		batches := 0
		for from := 0; from < len(idx); from += m.cfg.BatchSize {
			to := from + m.cfg.BatchSize
			if to > len(idx) {
				to = len(idx)
			}
			batch := idx[from:to]
			b := len(batch)

			flats := mlcore.NewMatrix(b, termW+cellW)
			target := mlcore.NewMatrix(b, 1)
			for bi, si := range batch {
				copy(flats.Row(bi), m.featureVector(samples[si]).Data)
				target.Set(bi, 0, float64(samples[si].Label))
			}
			pred := m.head.Forward(flats, true)
			loss, grad := mlcore.BCELoss(pred, target)
			epochLoss += loss
			batches++
			dFlats := m.head.Backward(grad)

			// Re-run each sample's paths to restore their caches, then
			// backpropagate its slice of the batch gradient.
			for bi, si := range batch {
				s := samples[si]
				pathForward(m.termEmb, m.termRNN, s.TermTokens)
				pathBackward(m.termEmb, m.termRNN, dFlats.Row(bi)[:termW],
					m.cfg.MaxTerms, m.cfg.Units, m.termEmb.Dim)
				pathForward(m.cellEmb, m.cellRNN, s.CellTokens)
				pathBackward(m.cellEmb, m.cellRNN, dFlats.Row(bi)[termW:],
					m.cfg.MaxCells, m.cfg.Units, m.cellEmb.Dim)
			}
			mlcore.ClipGradients(m.params, 5)
			opt.Step(m.params)
		}
		if batches > 0 {
			stats.EpochLoss = append(stats.EpochLoss, epochLoss/float64(batches))
		}
	}
	stats.Duration = time.Since(start)
	return stats
}

// PredictProb returns the model's metadata probability for a sample.
func (m *Ensemble) PredictProb(s TupleSample) float64 {
	flat := m.featureVector(s)
	return m.head.Forward(flat, false).Data[0]
}

// Predict returns the hard label (threshold 0.5).
func (m *Ensemble) Predict(s TupleSample) int {
	if m.PredictProb(s) >= 0.5 {
		return 1
	}
	return 0
}

// Evaluate scores the model on labeled samples.
func (m *Ensemble) Evaluate(samples []TupleSample) Metrics {
	var mt Metrics
	for _, s := range samples {
		mt.Add(m.Predict(s), s.Label)
	}
	return mt
}
