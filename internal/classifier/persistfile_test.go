package classifier

import (
	"os"
	"path/filepath"
	"testing"

	"covidkg/internal/faultfs"
)

func tinyEnsemble(t *testing.T) (*Ensemble, []TupleSample) {
	t.Helper()
	samples, termW2V, cellW2V := buildSamples(t, 12, 9)
	cfg := DefaultEnsembleConfig()
	cfg.Units = 4
	cfg.Epochs = 2
	m, err := NewEnsemble(termW2V, cellW2V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Train(samples)
	return m, samples
}

// TestSaveLoadEnsembleFile: the checksummed file round-trips and the
// loaded model predicts identically.
func TestSaveLoadEnsembleFile(t *testing.T) {
	m, samples := tinyEnsemble(t)
	path := filepath.Join(t.TempDir(), "ensemble.model")
	if err := SaveEnsembleFile(faultfs.OS{}, path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadEnsembleFile(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:10] {
		a, b := m.PredictProb(s), m2.PredictProb(s)
		if diff := a - b; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("prediction drift: %v vs %v", a, b)
		}
	}
}

// TestSaveEnsembleFileCrashKeepsOldModel: a crash anywhere in the save
// leaves the previous model file intact and loadable.
func TestSaveEnsembleFileCrashKeepsOldModel(t *testing.T) {
	m, _ := tinyEnsemble(t)
	path := filepath.Join(t.TempDir(), "ensemble.model")
	if err := SaveEnsembleFile(faultfs.OS{}, path, m); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for failAt := 1; failAt <= 5; failAt++ {
		policy := &faultfs.CrashPolicy{FailAt: failAt}
		err := SaveEnsembleFile(faultfs.NewFaulty(faultfs.OS{}, policy), path, m)
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("failAt=%d: model file destroyed: %v", failAt, rerr)
		}
		if err != nil && string(after) != string(before) {
			t.Fatalf("failAt=%d: failed save mutated the model file", failAt)
		}
		if _, lerr := LoadEnsembleFile(faultfs.OS{}, path); lerr != nil {
			t.Fatalf("failAt=%d: model unloadable after crash: %v", failAt, lerr)
		}
	}
}

// TestLoadEnsembleFileDetectsCorruption: bit rot fails the checksum
// instead of silently mispredicting.
func TestLoadEnsembleFileDetectsCorruption(t *testing.T) {
	m, _ := tinyEnsemble(t)
	path := filepath.Join(t.TempDir(), "ensemble.model")
	if err := SaveEnsembleFile(faultfs.OS{}, path, m); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if _, err := LoadEnsembleFile(faultfs.OS{}, path); err == nil {
		t.Fatal("corrupted model loaded silently")
	}
}
