package classifier

import (
	"fmt"

	"covidkg/internal/features"
	"covidkg/internal/svm"
)

// SVMModel is the §3.5 metadata classifier: a linear SVM over the
// bag-of-words encoding of the substituted row text (f1) concatenated
// with the positional features (f2..f6).
type SVMModel struct {
	Vocab *features.Vocabulary
	model *svm.Linear
	cfg   svm.Config
}

// SVMSample is one row instance for the SVM path.
type SVMSample struct {
	Row   features.RowFeatures
	Label int
}

// SVMSamplesFromTable extracts per-row SVM samples from a labeled table.
func SVMSamplesFromTable(rows [][]string, meta []bool) []SVMSample {
	fs := features.ExtractRows(rows, meta)
	out := make([]SVMSample, len(fs))
	for i, f := range fs {
		label := 0
		if f.Label == features.LabelMetadata {
			label = 1
		}
		out[i] = SVMSample{Row: f, Label: label}
	}
	return out
}

// NewSVMModel creates an untrained model over the given vocabulary.
func NewSVMModel(vocab *features.Vocabulary, cfg svm.Config) *SVMModel {
	return &SVMModel{Vocab: vocab, cfg: cfg}
}

// Train fits the SVM on samples.
func (m *SVMModel) Train(samples []SVMSample) error {
	if len(samples) == 0 {
		return fmt.Errorf("classifier: no SVM training samples")
	}
	x := make([][]float64, len(samples))
	y := make([]int, len(samples))
	for i, s := range samples {
		x[i] = s.Row.Vector(m.Vocab)
		y[i] = s.Label
	}
	model, err := svm.TrainLinear(x, y, m.cfg)
	if err != nil {
		return err
	}
	m.model = model
	return nil
}

// Predict classifies one row (1 = metadata).
func (m *SVMModel) Predict(row features.RowFeatures) int {
	if m.model == nil {
		return 0
	}
	return m.model.Predict(row.Vector(m.Vocab))
}

// Evaluate scores the trained model on labeled samples.
func (m *SVMModel) Evaluate(samples []SVMSample) Metrics {
	var mt Metrics
	for _, s := range samples {
		mt.Add(m.Predict(s.Row), s.Label)
	}
	return mt
}
