package classifier

import (
	"encoding/json"
	"fmt"

	"covidkg/internal/durable"
	"covidkg/internal/embeddings"
	"covidkg/internal/faultfs"
	"covidkg/internal/mlcore"
)

// ensembleSnapshot is the serialized form of a trained ensemble: the
// configuration, both embedding vocabularies, and every parameter
// tensor. This is what the paper's model-release API (№11/13 in
// Figure 1) hands to downstream users for fine-tuning and reuse.
type ensembleSnapshot struct {
	Config    EnsembleConfig  `json:"config"`
	TermVocab map[string]int  `json:"term_vocab"`
	CellVocab map[string]int  `json:"cell_vocab"`
	TermDim   int             `json:"term_dim"`
	CellDim   int             `json:"cell_dim"`
	Params    json.RawMessage `json:"params"`
	// Batch normalization keeps running statistics that are state, not
	// trainable parameters; inference is wrong without them.
	BNRunMean []float64 `json:"bn_run_mean"`
	BNRunVar  []float64 `json:"bn_run_var"`
}

// headBatchNorm locates the head's batch-norm layer.
func (m *Ensemble) headBatchNorm() *mlcore.BatchNorm {
	for _, l := range m.head.Layers {
		if bn, ok := l.(*mlcore.BatchNorm); ok {
			return bn
		}
	}
	return nil
}

// Export serializes the trained ensemble to a self-contained JSON blob.
func (m *Ensemble) Export() ([]byte, error) {
	params, err := mlcore.ExportParams(m.params)
	if err != nil {
		return nil, fmt.Errorf("classifier: export: %w", err)
	}
	snap := ensembleSnapshot{
		Config:    m.cfg,
		TermVocab: m.termEmb.Vocab,
		CellVocab: m.cellEmb.Vocab,
		TermDim:   m.termEmb.Dim,
		CellDim:   m.cellEmb.Dim,
		Params:    params,
	}
	if bn := m.headBatchNorm(); bn != nil {
		snap.BNRunMean = bn.RunMean
		snap.BNRunVar = bn.RunVar
	}
	return json.Marshal(snap)
}

// ImportEnsemble reconstructs an ensemble from Export's output. The
// model is immediately usable for prediction and may be trained further
// (the paper's "fine-tune and reuse our released pre-trained models").
func ImportEnsemble(data []byte) (*Ensemble, error) {
	var snap ensembleSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("classifier: import: %w", err)
	}
	if snap.TermDim <= 0 || snap.CellDim <= 0 {
		return nil, fmt.Errorf("classifier: import: bad embedding dims %d/%d", snap.TermDim, snap.CellDim)
	}
	// rebuild the architecture via shell Word2Vec models that carry the
	// vocabularies and dimensions; the weights are overwritten below
	termShell := shellW2V(snap.TermVocab, snap.TermDim)
	cellShell := shellW2V(snap.CellVocab, snap.CellDim)
	m, err := NewEnsemble(termShell, cellShell, snap.Config)
	if err != nil {
		return nil, err
	}
	if err := mlcore.ImportParams(m.params, snap.Params); err != nil {
		return nil, fmt.Errorf("classifier: import: %w", err)
	}
	if bn := m.headBatchNorm(); bn != nil && len(snap.BNRunMean) == len(bn.RunMean) {
		copy(bn.RunMean, snap.BNRunMean)
		copy(bn.RunVar, snap.BNRunVar)
	}
	return m, nil
}

// SaveEnsembleFile persists a trained ensemble to path atomically
// (tmp → fsync → rename) inside a CRC32 envelope, so a crash mid-save
// never destroys the previous model and a corrupted file is detected
// at load instead of producing silently wrong predictions. Pass
// faultfs.OS{} outside tests.
func SaveEnsembleFile(fs faultfs.FS, path string, m *Ensemble) error {
	blob, err := m.Export()
	if err != nil {
		return err
	}
	if err := durable.WriteChecksummed(fs, path, blob); err != nil {
		return fmt.Errorf("classifier: save %s: %w", path, err)
	}
	return nil
}

// LoadEnsembleFile reads a model written by SaveEnsembleFile, verifying
// its checksum. Plain pre-envelope exports still load.
func LoadEnsembleFile(fs faultfs.FS, path string) (*Ensemble, error) {
	blob, err := durable.ReadChecksummed(fs, path)
	if err != nil {
		return nil, fmt.Errorf("classifier: load %s: %w", path, err)
	}
	return ImportEnsemble(blob)
}

// shellW2V builds a zero-weight Word2Vec carrying just a vocabulary and
// dimensionality; NewEnsemble copies its table into the embedding layer
// and ImportParams then overwrites every weight.
func shellW2V(vocab map[string]int, dim int) *embeddings.Word2Vec {
	words := make([]string, len(vocab))
	for w, id := range vocab {
		if id >= 0 && id < len(words) {
			words[id] = w
		}
	}
	return &embeddings.Word2Vec{
		Dim:   dim,
		Vocab: vocab,
		Words: words,
		In:    mlcore.NewMatrix(len(vocab), dim),
		Out:   mlcore.NewMatrix(len(vocab), dim),
	}
}
