// Package classifier implements the paper's metadata classification
// models and their evaluation harness (§3): the SVM over positional
// features (§3.5), the BiGRU ensemble with parallel term- and cell-level
// embedding layers (§3.6, Figure 3), its BiLSTM ablation variant, binary
// classification metrics, and 10-fold cross-validation (§3.3).
package classifier

import (
	"fmt"
	"math/rand"
)

// Metrics accumulates a binary confusion matrix.
type Metrics struct {
	TP, FP, TN, FN int
}

// Add records one (prediction, truth) pair; positive class is 1.
func (m *Metrics) Add(pred, truth int) {
	switch {
	case pred == 1 && truth == 1:
		m.TP++
	case pred == 1 && truth != 1:
		m.FP++
	case pred != 1 && truth != 1:
		m.TN++
	default:
		m.FN++
	}
}

// Merge folds other into m.
func (m *Metrics) Merge(other Metrics) {
	m.TP += other.TP
	m.FP += other.FP
	m.TN += other.TN
	m.FN += other.FN
}

// Total returns the number of recorded pairs.
func (m Metrics) Total() int { return m.TP + m.FP + m.TN + m.FN }

// Accuracy returns (TP+TN)/total.
func (m Metrics) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// Precision returns TP/(TP+FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall — the paper's
// F-measure.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the headline numbers.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f acc=%.3f (n=%d)",
		m.Precision(), m.Recall(), m.F1(), m.Accuracy(), m.Total())
}

// KFoldSplit partitions n indices into k shuffled folds. Every index
// appears in exactly one fold; folds differ in size by at most one.
func KFoldSplit(n, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// FoldResult carries one fold's metrics.
type FoldResult struct {
	Fold    int
	Metrics Metrics
}

// CrossValidate runs k-fold cross-validation: for each fold, train is
// called on the remaining indices and predict on the held-out ones;
// truth supplies labels. Returns per-fold results and pooled metrics.
func CrossValidate(
	n, k int, seed int64,
	train func(trainIdx []int),
	predict func(i int) int,
	truth func(i int) int,
) ([]FoldResult, Metrics) {
	folds := KFoldSplit(n, k, seed)
	var pooled Metrics
	results := make([]FoldResult, 0, len(folds))
	for fi, hold := range folds {
		inHold := make(map[int]bool, len(hold))
		for _, i := range hold {
			inHold[i] = true
		}
		var trainIdx []int
		for i := 0; i < n; i++ {
			if !inHold[i] {
				trainIdx = append(trainIdx, i)
			}
		}
		train(trainIdx)
		var fm Metrics
		for _, i := range hold {
			fm.Add(predict(i), truth(i))
		}
		pooled.Merge(fm)
		results = append(results, FoldResult{Fold: fi, Metrics: fm})
	}
	return results, pooled
}
