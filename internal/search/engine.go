// Package search implements COVIDKG's three advanced search engines
// (§2.1): search over title/abstract/caption, search over all
// publication fields, and search over paper tables. All three share one
// evaluation process — an aggregation pipeline whose first stage is a
// $match over stemmed-term regexes, followed by $project and custom
// $function ranking stages — and differ only in which fields they match
// and how results are formatted, exactly as the paper describes.
package search

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"

	"covidkg/internal/docstore"
	"covidkg/internal/index"
	"covidkg/internal/jsondoc"
	"covidkg/internal/metrics"
	"covidkg/internal/pipeline"
	"covidkg/internal/textproc"
)

// ErrBadQuery marks user-input errors (empty or unsearchable queries).
// API layers use it to distinguish 400-class mistakes from internal
// failures.
var ErrBadQuery = errors.New("bad query")

// ErrBadDoc marks structurally invalid ingest documents (for now: a
// present-but-unusable _id). It wraps ErrBadQuery so API layers map it
// to the same 400 envelope without a second error taxonomy.
var ErrBadDoc = fmt.Errorf("%w: bad document", ErrBadQuery)

// Field names used for indexing and ranking.
const (
	FieldTitle         = "title"
	FieldAbstract      = "abstract"
	FieldBody          = "body"
	FieldTableCaption  = "table_caption"
	FieldTableCell     = "table_cell"
	FieldFigureCaption = "figure_caption"
)

// PerPage is the pagination unit: "the results are paginated as a list
// of ten per page" (§2.1).
const PerPage = 10

// Engine ties a publication collection to its inverted index and hosts
// the three search entry points. Queries run concurrently: candidate
// scoring fans out over a bounded worker pool, and computed pages are
// held in a generation-versioned LRU so repeated queries skip the
// pipeline entirely. All methods are safe for concurrent use.
type Engine struct {
	coll docstore.Docs
	idx  *index.Index

	// rankOpts is copy-on-set so concurrent queries never observe a
	// torn options struct.
	rankOpts atomic.Pointer[RankOptions]
	// workers bounds the scoring/matching fan-out (default GOMAXPROCS).
	workers atomic.Int32
	// gen is bumped by global invalidations (removal, option changes);
	// cache entries carry it plus per-term index write generations, so a
	// removal or option flip stales every cached page while an ingest
	// stales only pages whose query terms the new document touched.
	gen   atomic.Uint64
	cache atomic.Pointer[queryCache]
	met   *metrics.Registry
	// indexScoring enables the index-native top-k path for eligible
	// query shapes (on by default; off forces the pipeline path, used
	// by benchmarks and the parity property test).
	indexScoring atomic.Bool
}

// NewEngine builds a search engine over the given publication
// collection — in-process (*docstore.Collection) or a remote shard tier
// behind a shardnet coordinator; any docstore.Docs works — and indexes
// every document already present.
func NewEngine(coll docstore.Docs) *Engine {
	e := &Engine{coll: coll, idx: index.New(), met: metrics.Default()}
	e.idx.SetFieldWeights(fieldWeights)
	e.rankOpts.Store(&RankOptions{})
	e.workers.Store(int32(pipeline.DefaultWorkers()))
	e.cache.Store(newQueryCache(defaultCacheEntries, defaultCacheBytes))
	e.indexScoring.Store(true)
	coll.Scan(func(d jsondoc.Doc) bool {
		e.indexDoc(d)
		return true
	})
	return e
}

// SetIndexScoring toggles the index-native top-k scoring path. Both
// settings produce identical pages (the paths are parity-tested); off
// forces every query through the full materialize-match-rank pipeline.
// Toggling bumps the generation so cached pages carry no stale counters
// semantics across a switch.
func (e *Engine) SetIndexScoring(on bool) {
	e.indexScoring.Store(on)
	e.invalidate()
}

// IndexScoring reports whether the index-native top-k path is enabled.
func (e *Engine) IndexScoring() bool { return e.indexScoring.Load() }

// ScoringStats reports how many queries each scoring path served and
// how many candidate documents the top-k bound pruned, for the metrics
// endpoint and benchmarks.
func (e *Engine) ScoringStats() (indexPath, fallback, pruned int64) {
	return e.met.Counter("index_path_queries").Value(),
		e.met.Counter("fallback_path_queries").Value(),
		e.met.Counter("topk_pruned_docs").Value()
}

// Index returns the engine's inverted index (read-mostly; exposed for
// ranking diagnostics and experiments).
func (e *Engine) Index() *index.Index { return e.idx }

// SetMetrics redirects the engine's counters and histograms to reg
// instead of the process-default registry. Call it right after
// NewEngine, before the engine serves queries — the registry pointer is
// not synchronized against in-flight requests.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	if reg != nil {
		e.met = reg
	}
}

// Workers returns the current scoring fan-out width, clamped to
// runtime.GOMAXPROCS(0): spawning more scoring goroutines than
// schedulable CPUs only adds switch overhead (on a 1-core host the
// parallel path used to lose to the serial one), and at width 1 the
// pipeline stages skip pool spawn entirely and run inline.
func (e *Engine) Workers() int {
	n := int(e.workers.Load())
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	return n
}

// SetWorkers bounds the per-query worker pool; n ≤ 1 forces fully
// serial execution (useful for benchmarking the speedup). Values above
// runtime.GOMAXPROCS(0) are clamped at read time.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers.Store(int32(n))
}

// SetCacheLimits replaces the query cache with one bounded by maxItems
// entries and maxBytes of retained results. Non-positive limits disable
// caching. The previous cache's contents are discarded.
func (e *Engine) SetCacheLimits(maxItems int, maxBytes int64) {
	e.cache.Store(newQueryCache(maxItems, maxBytes))
}

// CacheStats reports query-cache hit/miss/eviction counters and current
// occupancy.
func (e *Engine) CacheStats() CacheStats { return e.cache.Load().stats() }

// Generation returns the current global invalidation generation; it
// increases on every document removal and every option change. Document
// ingest does not bump it — ingest invalidates cached pages through the
// index's per-term write generations instead, so unrelated pages stay
// warm under a live writer.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// invalidate bumps the generation, atomically staling every cached page.
func (e *Engine) invalidate() { e.gen.Add(1) }

// AddDocument inserts a publication document into the collection and the
// index. The document must follow the corpus shape (title, abstract,
// body_text, tables, figure_captions). A missing or empty _id means the
// store assigns one; a non-string _id is rejected with ErrBadDoc before
// anything is stored — previously such documents were inserted but
// silently never indexed, permanently invisible to search.
func (e *Engine) AddDocument(d jsondoc.Doc) (string, error) {
	if v, present := d[docstore.IDField]; present {
		if _, ok := v.(string); !ok {
			return "", fmt.Errorf("%w: %s must be a string, got %T(%v)",
				ErrBadDoc, docstore.IDField, v, v)
		}
	}
	// Index from the insert result rather than re-reading the store: a
	// post-insert Get can fail (shard breaker opening between the two
	// calls) which used to leave the document stored but never indexed.
	nd := jsondoc.NormalizeDoc(d)
	id, err := e.coll.Insert(nd)
	if err != nil {
		return "", err
	}
	nd[docstore.IDField] = id
	e.indexDoc(nd)
	return id, nil
}

// RemoveDocument deletes a publication from collection and index.
func (e *Engine) RemoveDocument(id string) error {
	if err := e.coll.Delete(id); err != nil {
		return err
	}
	e.idx.Remove(id)
	e.invalidate()
	return nil
}

func (e *Engine) indexDoc(d jsondoc.Doc) {
	id, _ := d[docstore.IDField].(string)
	if id == "" {
		// AddDocument validates ids up front, so reaching this means a
		// pre-seeded collection holds a malformed document; count it so
		// the divergence is observable instead of silent.
		e.met.Counter("index.skipped_no_id").Inc()
		return
	}
	e.idx.Add(id, FieldTitle, d.GetString("title"))
	e.idx.Add(id, FieldAbstract, d.GetString("abstract"))
	e.idx.Add(id, FieldBody, d.GetString("body_text"))
	for _, tv := range d.GetArray("tables") {
		tm, _ := tv.(map[string]any)
		if tm == nil {
			continue
		}
		td := jsondoc.Doc(tm)
		e.idx.Add(id, FieldTableCaption, td.GetString("caption"))
		for _, rv := range td.GetArray("rows") {
			ra, _ := rv.([]any)
			for _, cv := range ra {
				if s, ok := cv.(string); ok {
					e.idx.Add(id, FieldTableCell, s)
				}
			}
		}
	}
	for _, fv := range d.GetArray("figure_captions") {
		if s, ok := fv.(string); ok {
			e.idx.Add(id, FieldFigureCaption, s)
		}
	}
	// Record the static (recency) feature so index-native scoring never
	// needs the stored document.
	e.idx.SetStatic(id, recencyOf(d))
}

// fieldTexts extracts the raw text of each logical field of a stored
// publication, used for matching and snippets. Table captions and cells
// are concatenated per table.
func fieldTexts(d jsondoc.Doc) map[string][]string {
	out := map[string][]string{
		FieldTitle:    {d.GetString("title")},
		FieldAbstract: {d.GetString("abstract")},
		FieldBody:     {d.GetString("body_text")},
	}
	for _, tv := range d.GetArray("tables") {
		tm, _ := tv.(map[string]any)
		if tm == nil {
			continue
		}
		td := jsondoc.Doc(tm)
		out[FieldTableCaption] = append(out[FieldTableCaption], td.GetString("caption"))
		var cells []string
		for _, rv := range td.GetArray("rows") {
			ra, _ := rv.([]any)
			for _, cv := range ra {
				if s, ok := cv.(string); ok && s != "" {
					cells = append(cells, s)
				}
			}
		}
		out[FieldTableCell] = append(out[FieldTableCell], strings.Join(cells, " | "))
	}
	for _, fv := range d.GetArray("figure_captions") {
		if s, ok := fv.(string); ok {
			out[FieldFigureCaption] = append(out[FieldFigureCaption], s)
		}
	}
	return out
}

// termMatches reports whether a query term occurs in text: quoted terms
// match as case-insensitive substrings ("exact match of the query if
// wrapped in quotes"), bare terms match any token whose stem equals, or
// which extends, the stemmed query term ("stemming match capability on a
// tokenized query").
func termMatches(term textproc.QueryTerm, text string) bool {
	if term.Exact {
		return strings.Contains(strings.ToLower(text), term.Text)
	}
	for _, tok := range textproc.Tokenize(text) {
		if tokenMatchesStem(tok.Text, term.Text) {
			return true
		}
	}
	return false
}

// tokenMatchesStem implements the stemmed-regex matching rule.
func tokenMatchesStem(token, stem string) bool {
	return textproc.Stem(token) == stem || strings.HasPrefix(token, stem)
}

// termMatchesSyn is termMatches extended through the synonym table for
// bare terms (quoted phrases stay literal): a document matching
// "immunization" is a verified hit for the term "vaccine" unless
// NoSynonyms is set. Candidate generation admits synonym-only documents
// (expandSynonyms), so the verify predicate must recognize them too or
// phrase+term queries silently lose synonym recall.
func (e *Engine) termMatchesSyn(term textproc.QueryTerm, text string) bool {
	if term.Exact {
		return strings.Contains(strings.ToLower(text), term.Text)
	}
	stems := []string{term.Text}
	if !e.RankOptions().NoSynonyms {
		stems = append(stems, textproc.SynonymStems(term.Text)...)
	}
	for _, tok := range textproc.Tokenize(text) {
		for _, s := range stems {
			if tokenMatchesStem(tok.Text, s) {
				return true
			}
		}
	}
	return false
}

// Result is one ranked search hit.
type Result struct {
	DocID    string
	Score    float64
	Title    string
	Authors  []string
	Journal  string
	Snippets []Snippet
}

// Snippet is an excerpt of one field with highlight spans (byte offsets
// into Text) for the matched terms — the front-end paints these red.
type Snippet struct {
	Field      string
	Text       string
	Highlights [][2]int
}

// Page is one page of results plus pagination bookkeeping. Partial
// marks a degraded response: one or more shards were unavailable, so
// Results covers only the surviving shards and Total undercounts.
// MissingShards lists the dark shards so clients (and the API's
// X-Partial-Results header) can surface what is missing. Partial pages
// are never cached.
type Page struct {
	Results       []Result
	Total         int // total matching documents across all pages
	PageNum       int // 1-based
	PerPage       int
	NumPages      int
	Partial       bool  `json:"partial"`
	MissingShards []int `json:"missing_shards,omitempty"`
}

func paginate(all []Result, pageNum int) Page {
	if pageNum < 1 {
		pageNum = 1
	}
	total := len(all)
	// an empty result set still has one (empty) page, so NumPages ≥ 1
	// and PageNum ≤ NumPages always holds for page 1
	numPages := (total + PerPage - 1) / PerPage
	if numPages < 1 {
		numPages = 1
	}
	start := (pageNum - 1) * PerPage
	var res []Result
	if start < total {
		end := start + PerPage
		if end > total {
			end = total
		}
		res = all[start:end]
	}
	return Page{Results: res, Total: total, PageNum: pageNum, PerPage: PerPage, NumPages: numPages}
}

// resultFromDoc builds the result skeleton (identity fields) from a
// stored publication.
func resultFromDoc(d jsondoc.Doc, score float64) Result {
	var authors []string
	for _, a := range d.GetArray("authors") {
		if s, ok := a.(string); ok {
			authors = append(authors, s)
		}
	}
	return Result{
		DocID:   d.GetString("_id"),
		Score:   score,
		Title:   d.GetString("title"),
		Authors: authors,
		Journal: d.GetString("journal"),
	}
}

// sortResults orders by descending score with doc id as the
// deterministic tiebreak.
func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].DocID < rs[j].DocID
	})
}

// queryOrError parses the query and rejects empty ones.
func queryOrError(q string) ([]textproc.QueryTerm, error) {
	terms := textproc.ParseQuery(q)
	if len(terms) == 0 {
		return nil, fmt.Errorf("search: %w: query %q has no searchable terms", ErrBadQuery, q)
	}
	return terms, nil
}
