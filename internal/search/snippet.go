package search

import (
	"strings"
	"unicode/utf8"

	"covidkg/internal/textproc"
)

// snippetRadius is how many bytes of context a snippet keeps on each
// side of the first highlighted match.
const snippetRadius = 80

// makeSnippet excerpts text around the first query-term match and
// records every highlight span inside the excerpt. Returns ok=false when
// no term matches.
func makeSnippet(field, text string, terms []textproc.QueryTerm) (Snippet, bool) {
	spans := matchSpans(text, terms)
	if len(spans) == 0 {
		return Snippet{}, false
	}

	// window around the first match
	start := spans[0][0] - snippetRadius
	if start < 0 {
		start = 0
	}
	end := spans[0][1] + snippetRadius
	if end > len(text) {
		end = len(text)
	}
	// align to rune boundaries: a window edge that lands mid-rune slides
	// outward to the nearest lead byte so the excerpt is always valid
	// UTF-8 (the old ASCII-only check walked past entire non-Latin runs)
	for start > 0 && !utf8.RuneStart(text[start]) {
		start--
	}
	for end < len(text) && !utf8.RuneStart(text[end]) {
		end++
	}

	excerpt := text[start:end]
	var hl [][2]int
	for _, sp := range spans {
		if sp[0] >= start && sp[1] <= end {
			hl = append(hl, [2]int{sp[0] - start, sp[1] - start})
		}
	}
	if start > 0 {
		excerpt = "…" + excerpt
		off := len("…")
		for i := range hl {
			hl[i][0] += off
			hl[i][1] += off
		}
	}
	if end < len(text) {
		excerpt += "…"
	}
	return Snippet{Field: field, Text: excerpt, Highlights: hl}, true
}

// matchSpans returns sorted, de-overlapped byte spans of every query-term
// match in text.
func matchSpans(text string, terms []textproc.QueryTerm) [][2]int {
	var spans [][2]int
	lower := strings.ToLower(text)
	for _, t := range terms {
		if t.Exact {
			for from := 0; ; {
				i := strings.Index(lower[from:], t.Text)
				if i < 0 {
					break
				}
				s := from + i
				spans = append(spans, [2]int{s, s + len(t.Text)})
				from = s + len(t.Text)
			}
		} else {
			for _, tok := range textproc.Tokenize(text) {
				if tokenMatchesStem(tok.Text, t.Text) {
					spans = append(spans, [2]int{tok.Start, tok.End})
				}
			}
		}
	}
	if len(spans) == 0 {
		return nil
	}
	sortSpans(spans)
	return dedupeSpans(spans)
}

func sortSpans(spans [][2]int) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j][0] < spans[j-1][0]; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func dedupeSpans(spans [][2]int) [][2]int {
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if sp[0] < last[1] {
			if sp[1] > last[1] {
				last[1] = sp[1]
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// HighlightMarked renders a snippet's text with [[ ]] markers around
// highlights — the plain-text analogue of the UI's red highlighting,
// useful for terminals and tests.
func (s Snippet) HighlightMarked() string {
	if len(s.Highlights) == 0 {
		return s.Text
	}
	var b strings.Builder
	prev := 0
	for _, h := range s.Highlights {
		if h[0] < prev || h[1] > len(s.Text) {
			continue
		}
		b.WriteString(s.Text[prev:h[0]])
		b.WriteString("[[")
		b.WriteString(s.Text[h[0]:h[1]])
		b.WriteString("]]")
		prev = h[1]
	}
	b.WriteString(s.Text[prev:])
	return b.String()
}
