package search

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"covidkg/internal/docstore"
	"covidkg/internal/failpoint"
	"covidkg/internal/jsondoc"
	"covidkg/internal/textproc"
)

// TestAddDocumentIndexesDespiteReadbackFailure pins the store/index
// divergence fix: AddDocument used to insert, then re-read the stored
// copy, then index the readback. A replica dying between the two calls
// made AddDocument fail AFTER the write landed — document stored,
// never indexed, permanently invisible to search. The fixed path
// indexes the insert result and never reads back.
func TestAddDocumentIndexesDespiteReadbackFailure(t *testing.T) {
	reg := failpoint.New(1)
	s := docstore.Open(docstore.WithShards(1), docstore.WithReplicas(1), docstore.WithFailpoints(reg))
	c := s.Collection("pubs")
	e := NewEngine(c)
	target := docstore.ReplicaTarget(0, 0)

	// Measure how many failpoint checks one insert performs, so the
	// outage can be scheduled to start exactly after the write lands.
	reg.Set(target, failpoint.Rule{})
	if _, err := e.AddDocument(pub("", "Warmup", "warmup text", "")); err != nil {
		t.Fatal(err)
	}
	insertChecks := reg.Checks(target)
	if insertChecks == 0 {
		t.Fatal("insert performed no failpoint checks; cannot schedule the outage")
	}

	reg.Set(target, failpoint.Rule{Down: true, SkipChecks: insertChecks})
	id, err := e.AddDocument(pub("", "Zymurgy advances", "A zymurgy survey.", ""))
	if err != nil {
		t.Fatalf("AddDocument failed when the replica died after the write: %v", err)
	}
	// The readback window is real: the store is unreachable right now.
	if _, err := c.Get(id); err == nil {
		t.Fatal("expected store reads to fail while the replica is down")
	}
	stem := textproc.Stem("zymurgy")
	if df := e.Index().DocFreq(stem); df != 1 {
		t.Fatalf("DocFreq(%q) = %d, want 1: stored document was never indexed", stem, df)
	}

	reg.ClearAll()
	pg, err := e.SearchAll("zymurgy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Results) != 1 || pg.Results[0].DocID != id {
		t.Fatalf("search after recovery = %+v, want exactly doc %s", pg.Results, id)
	}
}

// TestAddDocumentRejectsNonStringID pins the _id validation fix: a
// non-string _id used to be stored (the store assigned a fresh id over
// it) while indexDoc silently skipped the doc. Now it is rejected up
// front with ErrBadDoc, which wraps ErrBadQuery so the API answers 400.
func TestAddDocumentRejectsNonStringID(t *testing.T) {
	e := testEngine(t)
	countDocs := func() int {
		n := 0
		e.coll.Scan(func(jsondoc.Doc) bool { n++; return true })
		return n
	}
	before, idxBefore := countDocs(), e.Index().DocCount()
	_, err := e.AddDocument(jsondoc.Doc{
		"_id": 123, "title": "Xylotomy primer", "abstract": "", "body_text": "",
	})
	if err == nil {
		t.Fatal("non-string _id accepted")
	}
	if !errors.Is(err, ErrBadDoc) || !errors.Is(err, ErrBadQuery) {
		t.Fatalf("err = %v, want ErrBadDoc wrapping ErrBadQuery", err)
	}
	if n := countDocs(); n != before {
		t.Fatalf("rejected doc was stored: %d docs, had %d", n, before)
	}
	if n := e.Index().DocCount(); n != idxBefore {
		t.Fatalf("rejected doc was indexed: %d docs, had %d", n, idxBefore)
	}
}

// TestPagesIdenticalUnderLiveWriter is the snapshot-isolation property
// at the page level: readers query while a writer streams documents in
// (driving memtable seals and background merges), and when the dust
// settles every page must be byte-identical to one computed by a fresh
// flat engine over the same final corpus. It also pins the term-scoped
// cache contract: a query whose terms the writer never touches stays
// warm across writes, while overlapping queries go stale by term.
func TestPagesIdenticalUnderLiveWriter(t *testing.T) {
	words := []string{"mask", "vaccine", "fever", "dose", "trial", "cohort", "antibody", "serum"}
	sentence := func(rng *rand.Rand, k int) string {
		out := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				out += " "
			}
			out += words[rng.Intn(len(words))]
		}
		return out
	}
	mkDoc := func(i int, rng *rand.Rand, extra string) jsondoc.Doc {
		return pub(fmt.Sprintf("w%04d", i),
			sentence(rng, 4)+" "+extra,
			sentence(rng, 12),
			sentence(rng, 25))
	}

	s := docstore.Open(docstore.WithShards(2))
	c := s.Collection("pubs")
	rng := rand.New(rand.NewSource(11))
	var mu sync.Mutex
	var docs []jsondoc.Doc
	for i := 0; i < 80; i++ {
		// "zoonosis" lives only in the preloaded docs; the writer never
		// touches its term, so its cached page must stay warm throughout.
		d := mkDoc(i, rng, "zoonosis")
		docs = append(docs, d)
		if _, err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(c)
	e.Index().SetSealThreshold(16)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(7))
		for i := 80; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := mkDoc(i, wrng, "")
			if _, err := e.AddDocument(d); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			mu.Lock()
			docs = append(docs, d)
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	queries := []string{"mask", "vaccine fever", "\"dose trial\"", "zoonosis"}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, q := range queries {
			pg, err := e.SearchAll(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for i, r := range pg.Results {
				if seen[r.DocID] {
					t.Fatalf("q=%q: duplicate doc %s on page", q, r.DocID)
				}
				seen[r.DocID] = true
				if i > 0 && pg.Results[i-1].Score < r.Score {
					t.Fatalf("q=%q: scores out of order", q)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	e.Index().Wait()

	st := e.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("cache never warm under live writer: %+v", st)
	}
	if st.StaleTerm == 0 {
		t.Fatalf("writer overlapped query terms but no term-scoped staling: %+v", st)
	}
	if sealed := e.Index().Stats(); sealed.Seals == 0 {
		t.Fatalf("writer never drove a seal: %+v", sealed)
	}

	// Fresh flat engine over the same final corpus: every page of every
	// query must be byte-identical to the churned segmented engine's.
	// Flush the cache first — a warm page legitimately carries pre-write
	// corpus statistics (that is the documented staleness trade), and
	// the identity contract is about freshly computed pages.
	e.SetCacheLimits(defaultCacheEntries, defaultCacheBytes)
	s2 := docstore.Open(docstore.WithShards(2))
	c2 := s2.Collection("pubs")
	mu.Lock()
	for _, d := range docs {
		if _, err := c2.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	mu.Unlock()
	e2 := NewEngine(c2)
	for _, q := range queries {
		for page := 1; page <= 3; page++ {
			got, err := e.SearchAll(q, page)
			if err != nil {
				t.Fatal(err)
			}
			want, err := e2.SearchAll(q, page)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q=%q page %d diverged after churn:\nsegmented %+v\nflat      %+v", q, page, got, want)
			}
		}
	}
}
