package search

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"covidkg/internal/jsondoc"
	"covidkg/internal/pipeline"
	"covidkg/internal/textproc"
)

// The index-native top-k scoring path. Instead of materializing every
// candidate document and ranking the full set before throwing away all
// but one page (the pipeline path), this path walks the per-term
// posting lists document-at-a-time, scores candidates straight from the
// index, keeps only the best k = pageNum·PerPage (+overfetch) in a
// bounded heap, and materializes just the ≤ PerPage winners for
// snippets. Per-term max-score upper bounds (classic max-score early
// termination) let fully-scored work be skipped for candidates that
// provably cannot enter the heap.
//
// The path is only taken for query shapes whose ranking is derivable
// from postings alone — no quoted phrases (those need substring
// verification against raw text) and no unresolvable scans — and only
// while every shard is serving, so a degraded partial response always
// comes from the pipeline path. Within those shapes the ranking is
// bit-identical to the pipeline path: survivors are scored by the very
// same e.score accumulation the pipeline uses, and the precomputed
// partials serve only as pruning bounds (padded against float drift).

// topkOverfetch extends the heap past pageNum·PerPage. The (score desc,
// docID asc) order is total, so k entries already determine the page
// exactly; the overfetch is pure safety margin for the deterministic
// doc-id tiebreak at the page boundary.
const topkOverfetch = PerPage

// boundPad and boundEps inflate pruning upper bounds so a bound that
// lands within float-rounding distance of the heap minimum is treated
// as potentially beating it (the candidate gets scored for real instead
// of pruned). Correctness never depends on the bound being tight —
// only on it never being low.
const (
	boundPad = 1 + 1e-9
	boundEps = 1e-12
)

// topkEntry is one heap slot: the fully-scored candidate.
type topkEntry struct {
	docID string
	score float64
}

// topkHeap is a bounded min-heap whose root is the weakest kept entry
// under the result order (score desc, docID asc) — i.e. the root has
// the lowest score, largest docID on ties.
type topkHeap struct {
	k  int
	es []topkEntry
}

func (h *topkHeap) full() bool { return len(h.es) >= h.k }

// weaker reports whether entry a ranks below entry b in the final
// (score desc, docID asc) order.
func weaker(a, b topkEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.docID > b.docID
}

// beats reports whether a candidate with the given score upper bound
// could displace the current weakest entry.
func (h *topkHeap) beats(bound float64, docID string) bool {
	root := h.es[0]
	if bound != root.score {
		return bound > root.score
	}
	return docID < root.docID
}

func (h *topkHeap) push(e topkEntry) {
	if len(h.es) < h.k {
		h.es = append(h.es, e)
		i := len(h.es) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !weaker(h.es[i], h.es[p]) {
				break
			}
			h.es[i], h.es[p] = h.es[p], h.es[i]
			i = p
		}
		return
	}
	if !weaker(h.es[0], e) {
		return // candidate is not stronger than the weakest kept entry
	}
	h.es[0] = e
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(h.es) && weaker(h.es[l], h.es[w]) {
			w = l
		}
		if r < len(h.es) && weaker(h.es[r], h.es[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.es[i], h.es[w] = h.es[w], h.es[i]
		i = w
	}
}

// ranked drains the heap into (score desc, docID asc) order.
func (h *topkHeap) ranked() []topkEntry {
	out := h.es
	sort.Slice(out, func(i, j int) bool { return weaker(out[j], out[i]) })
	return out
}

// postingIter walks one term's sorted posting list in step with the
// ascending candidate stream.
type postingIter struct {
	docs []string
	pos  int
}

// advance moves the iterator to the first posting ≥ doc and reports
// whether the term posts for doc. Candidates arrive ascending, so each
// list is traversed once per query.
func (it *postingIter) advance(doc string) bool {
	d := it.docs
	if it.pos >= len(d) {
		return false
	}
	it.pos += sort.SearchStrings(d[it.pos:], doc)
	return it.pos < len(d) && d[it.pos] == doc
}

// topkScratch pools the per-query allocations of the top-k path: the
// heap backing array, the posting iterators, and the per-term bound
// tables.
type topkScratch struct {
	heap    topkHeap
	iters   []postingIter
	present []bool
	tfidfUB []float64
	rawUB   []float64
}

var topkPool = sync.Pool{New: func() any { return &topkScratch{} }}

// termSlot groups one query term with its synonym expansions; indexes
// point into the flat per-name iterator/bound tables.
type termSlot struct {
	primary int
	syns    []int
}

// runTopK executes the index-native scoring path over a sorted
// candidate id list. It returns served=false (without error) when the
// page cannot be produced from the index alone — currently only when a
// winner's document fetch fails mid-materialization (e.g. its shard
// went dark after the shape gate passed) — in which case the caller
// falls back to the pipeline path.
func (e *Engine) runTopK(
	ctx context.Context,
	candidates []string,
	terms []textproc.QueryTerm,
	rankFields map[string]bool,
	snippetFields []string,
	pageNum int,
) (Page, bool, error) {
	if err := ctx.Err(); err != nil {
		return Page{}, false, fmt.Errorf("search: topk: %w", err)
	}
	opts := *e.rankOpts.Load()

	// Flatten (term, synonyms…) into per-name posting snapshots and
	// per-name score upper-bound contributions.
	var names []string
	slots := make([]termSlot, 0, len(terms))
	for _, t := range terms {
		s := termSlot{primary: len(names)}
		names = append(names, t.Text)
		if !opts.NoSynonyms {
			for _, syn := range textproc.SynonymStems(t.Text) {
				s.syns = append(s.syns, len(names))
				names = append(names, syn)
			}
		}
		slots = append(slots, s)
	}
	snaps := e.idx.TermSnapshots(names)

	sc := topkPool.Get().(*topkScratch)
	defer func() {
		sc.heap.es = sc.heap.es[:0]
		sc.iters = sc.iters[:0]
		sc.present = sc.present[:0]
		sc.tfidfUB = sc.tfidfUB[:0]
		sc.rawUB = sc.rawUB[:0]
		topkPool.Put(sc)
	}()
	for i := range snaps {
		sc.iters = append(sc.iters, postingIter{docs: snaps[i].Docs})
		sc.present = append(sc.present, false)
		sc.tfidfUB = append(sc.tfidfUB, 0)
		sc.rawUB = append(sc.rawUB, 0)
	}

	// Per-name bound pieces mirror the score formula's weights: a name
	// present in a document contributes at most maxWTF·idf·w/10 to the
	// TF-IDF feature (weighted-TF maximum over any document holding the
	// term) and, for primary terms only, at most wMatches·maxRaw to the
	// match-count feature (synonym hits never increment the match
	// count). FlatFields swaps the weighted maximum for the raw one,
	// NoIDF pins idf at 1 — the same ablations e.score applies.
	idf := func(term string) float64 {
		if opts.NoIDF {
			return 1
		}
		return e.idx.IDF(term)
	}
	maxTF := func(s int) float64 {
		if opts.FlatFields {
			return float64(snaps[s].MaxRaw)
		}
		return snaps[s].MaxWTF
	}
	for _, s := range slots {
		sc.tfidfUB[s.primary] = maxTF(s.primary) * idf(names[s.primary]) * wTFIDF / 10
		sc.rawUB[s.primary] = wMatches * float64(snaps[s.primary].MaxRaw)
		for _, j := range s.syns {
			sc.tfidfUB[j] = maxTF(j) * idf(names[j]) * wSynonym / 10
		}
	}

	k := pageNum*PerPage + topkOverfetch
	sc.heap.k = k
	var pruned int64

	start := time.Now()
	for i, doc := range candidates {
		if i%pipeline.CancelCheckInterval == 0 && ctx.Err() != nil {
			return Page{}, false, fmt.Errorf("search: topk: %w", ctx.Err())
		}
		for j := range sc.iters {
			sc.present[j] = sc.iters[j].advance(doc)
		}
		if sc.heap.full() {
			// Max-score upper bound: sum the present names' TF-IDF caps,
			// the present primaries' match-count caps, perfect coverage
			// over the slots with any present name, the proximity
			// feature's maximum when ≥2 primaries co-occur, and the
			// document's static (recency) score.
			ub := e.idx.Static(doc)
			matchedSlots := 0
			primaries := 0
			for _, s := range slots {
				hit := false
				if sc.present[s.primary] {
					hit = true
					primaries++
					ub += sc.tfidfUB[s.primary] + sc.rawUB[s.primary]
				}
				for _, j := range s.syns {
					if sc.present[j] {
						hit = true
						ub += sc.tfidfUB[j]
					}
				}
				if hit {
					matchedSlots++
				}
			}
			if matchedSlots > 0 && !opts.NoCoverage {
				ub += wCoverage * float64(matchedSlots) / float64(len(terms))
			}
			if primaries >= 2 && !opts.NoProximity {
				ub += wProximity
			}
			if !sc.heap.beats(ub*boundPad+boundEps, doc) {
				pruned++
				continue
			}
		}
		// Survivor: score with the exact pipeline formula (same floats,
		// same order) so kept entries are bit-identical to the pipeline
		// path's scores.
		sc.heap.push(topkEntry{docID: doc, score: e.score(doc, nil, terms, rankFields).Total})
	}
	e.observeStage("topk", time.Since(start))
	if pruned > 0 {
		e.met.Counter("topk_pruned_docs").Add(pruned)
	}
	if err := ctx.Err(); err != nil {
		return Page{}, false, fmt.Errorf("search: topk: %w", err)
	}

	// Page math mirrors paginate exactly: Total counts every candidate,
	// NumPages ≥ 1, and a past-the-end page carries nil Results.
	total := len(candidates)
	numPages := (total + PerPage - 1) / PerPage
	if numPages < 1 {
		numPages = 1
	}
	page := Page{Total: total, PageNum: pageNum, PerPage: PerPage, NumPages: numPages}
	pstart := (pageNum - 1) * PerPage
	if pstart >= total {
		return page, true, nil
	}
	ranked := sc.heap.ranked()
	pend := pstart + PerPage
	if pend > len(ranked) {
		pend = len(ranked)
	}

	// Materialize only the winners. Any fetch failure (a shard darkened
	// after the shape gate, a concurrent delete) abandons the index path
	// so the pipeline path can degrade properly.
	start = time.Now()
	if ctx.Err() != nil {
		return Page{}, false, fmt.Errorf("search: topk: %w", ctx.Err())
	}
	results := make([]Result, 0, pend-pstart)
	for _, en := range ranked[pstart:pend] {
		d, err := e.coll.Get(en.docID)
		if err != nil {
			return Page{}, false, nil
		}
		r := resultFromDoc(d, en.score)
		texts := fieldTexts(d)
		for _, f := range snippetFields {
			for _, txt := range texts[f] {
				if sn, ok := makeSnippet(f, txt, terms); ok {
					r.Snippets = append(r.Snippets, sn)
				}
			}
		}
		results = append(results, r)
	}
	e.observeStage("materialize", time.Since(start))
	page.Results = results
	return page, true, nil
}

// runQuery routes one query to the index-native top-k path when the
// shape allows it — an index-resolved candidate set needing no
// verification, index scoring enabled, and every shard serving — and
// otherwise (or when the top-k path bails mid-materialization) to the
// full pipeline path. Both paths produce identical pages for eligible
// shapes; the counters expose which path served each query.
func (e *Engine) runQuery(
	ctx context.Context,
	matchPred func(d jsondoc.Doc) bool,
	candidates []string,
	verifyCandidates bool,
	terms []textproc.QueryTerm,
	rankFields map[string]bool,
	snippetFields []string,
	pageNum int,
) (Page, error) {
	if candidates != nil && !verifyCandidates && e.IndexScoring() && e.coll.AllShardsServing() {
		pg, served, err := e.runTopK(ctx, candidates, terms, rankFields, snippetFields, pageNum)
		if err != nil {
			return Page{}, err
		}
		if served {
			e.met.Counter("index_path_queries").Inc()
			return pg, nil
		}
	}
	e.met.Counter("fallback_path_queries").Inc()
	return e.runSearch(ctx, matchPred, candidates, verifyCandidates, terms, rankFields, snippetFields, pageNum)
}
