package search

import (
	"covidkg/internal/jsondoc"
	"covidkg/internal/textproc"
)

// Field weights for the ranking function. The paper weights "which field
// the term was matched in"; titles and captions are short, curated text
// and dominate body matches.
var fieldWeights = map[string]float64{
	FieldTitle:         3.0,
	FieldTableCaption:  2.5,
	FieldAbstract:      2.0,
	FieldTableCell:     2.0,
	FieldFigureCaption: 1.5,
	FieldBody:          1.0,
}

// Ranking feature weights. The ranking is "an accumulation of various
// weighted features per document": per-term TF-IDF within matched
// fields, total match count, proximity between matched terms, and a
// static document feature (recency).
const (
	wTFIDF     = 1.0
	wMatches   = 0.05
	wProximity = 0.75
	wCoverage  = 1.5
	wRecency   = 0.1
	// wSynonym discounts matches through the synonym table relative to
	// direct term matches (§5: the ranking "recognizes synonymy").
	wSynonym = 0.4
)

// RankOptions disables individual ranking features for ablation studies
// (experiment E13). The zero value enables everything — the production
// configuration.
type RankOptions struct {
	NoProximity bool // drop the term-proximity feature
	NoCoverage  bool // drop the query-coverage feature
	FlatFields  bool // weight every field equally
	NoIDF       bool // count raw matches without TF-IDF weighting
	NoSynonyms  bool // ignore the synonym table
}

// SetRankOptions configures feature ablation. Safe to call concurrently
// with queries: options are copy-on-set behind an atomic pointer, and
// setting them bumps the engine generation so cached pages computed
// under the old options are invalidated.
func (e *Engine) SetRankOptions(o RankOptions) {
	e.rankOpts.Store(&o)
	e.invalidate()
}

// RankOptions returns the current ablation options (a copy).
func (e *Engine) RankOptions() RankOptions { return *e.rankOpts.Load() }

// RankExplain carries the per-feature breakdown of one document's score,
// so experiments (and curious users) can see why a result ranked where
// it did.
type RankExplain struct {
	TFIDF     float64
	Matches   float64
	Proximity float64
	Coverage  float64
	Recency   float64
	Total     float64
}

// recencyOf computes the static recency feature from a document's
// publish date. Dates are ISO "YYYY-MM-DD"; missing dates contribute
// nothing. The engine records this value in the index at indexing time
// so the index-native scoring path can apply it without touching the
// stored document.
func recencyOf(d jsondoc.Doc) float64 {
	if date := d.GetString("publish_date"); len(date) >= 4 {
		switch {
		case date >= "2022":
			return wRecency * 1.0
		case date >= "2021":
			return wRecency * 0.6
		case date >= "2020":
			return wRecency * 0.3
		}
	}
	return 0
}

// scoreDoc computes the ranking score of doc for the parsed query,
// restricted to the given fields (nil means all fields).
func (e *Engine) scoreDoc(d jsondoc.Doc, terms []textproc.QueryTerm, fields map[string]bool) RankExplain {
	return e.score(d.GetString("_id"), d, terms, fields)
}

// score is the single ranking implementation behind both scoring paths.
// The pipeline path passes the materialized document; the index-native
// top-k path passes a nil doc and the score is derived from postings
// alone (exact-phrase terms never reach the index path — phrase shapes
// force the pipeline fallback — and the recency feature comes from the
// static store recorded at indexing time). Both paths therefore
// accumulate the identical float sequence in the identical order, which
// is what makes their result pages byte-identical.
func (e *Engine) score(docID string, d jsondoc.Doc, terms []textproc.QueryTerm, fields map[string]bool) RankExplain {
	var ex RankExplain
	opts := *e.rankOpts.Load()
	fieldWeight := func(f string) float64 {
		if opts.FlatFields {
			return 1
		}
		return fieldWeights[f]
	}
	idf := func(term string) float64 {
		if opts.NoIDF {
			return 1
		}
		return e.idx.IDF(term)
	}

	// Stemmed terms participate in TF-IDF and proximity; exact phrases
	// contribute through match counting on the raw text.
	var stemmed []string
	for _, t := range terms {
		if !t.Exact {
			stemmed = append(stemmed, t.Text)
		}
	}

	matched := 0
	totalMatches := 0
	for _, t := range terms {
		termHit := false
		if t.Exact {
			if d == nil {
				continue // index path never sees exact terms
			}
			for f, texts := range fieldTexts(d) {
				if fields != nil && !fields[f] {
					continue
				}
				for _, txt := range texts {
					if termMatches(t, txt) {
						termHit = true
						totalMatches++
						ex.TFIDF += fieldWeight(f) // exact phrases score by field weight alone
					}
				}
			}
		} else {
			for _, f := range e.idx.FieldsOf(docID, t.Text) {
				if fields != nil && !fields[f] {
					continue
				}
				termHit = true
				tf := e.idx.TermFreq(t.Text, docID, f)
				totalMatches += tf
				ex.TFIDF += float64(tf) * idf(t.Text) * fieldWeight(f) * wTFIDF / 10
			}
			// synonym matches score at a discount and can rescue
			// coverage when the literal term is absent
			syns := textproc.SynonymStems(t.Text)
			if opts.NoSynonyms {
				syns = nil
			}
			for _, syn := range syns {
				for _, f := range e.idx.FieldsOf(docID, syn) {
					if fields != nil && !fields[f] {
						continue
					}
					termHit = true
					tf := e.idx.TermFreq(syn, docID, f)
					ex.TFIDF += float64(tf) * idf(syn) * fieldWeight(f) * wSynonym / 10
				}
			}
		}
		if termHit {
			matched++
		}
	}

	ex.Matches = wMatches * float64(totalMatches)

	// Proximity: reward query terms that occur near each other. Use the
	// minimum pairwise distance among stemmed terms.
	if len(stemmed) >= 2 && !opts.NoProximity {
		best := -1
		for i := 0; i < len(stemmed); i++ {
			for j := i + 1; j < len(stemmed); j++ {
				if di := e.idx.MinPairDistance(docID, stemmed[i], stemmed[j]); di >= 0 && (best < 0 || di < best) {
					best = di
				}
			}
		}
		if best >= 0 {
			ex.Proximity = wProximity / float64(1+best)
		}
	}

	// Coverage: fraction of query terms the document matched at all.
	if len(terms) > 0 && !opts.NoCoverage {
		ex.Coverage = wCoverage * float64(matched) / float64(len(terms))
	}

	// Static feature: newer publications get a small boost. The index
	// path reads the value recorded at indexing time; the pipeline path
	// recomputes it from the document (the two are identical because
	// indexDoc stores recencyOf(d)).
	if d == nil {
		ex.Recency = e.idx.Static(docID)
	} else {
		ex.Recency = recencyOf(d)
	}

	ex.Total = ex.TFIDF + ex.Matches + ex.Proximity + ex.Coverage + ex.Recency
	return ex
}
