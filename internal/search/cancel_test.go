package search

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
)

// countdownCtx reports itself cancelled after a fixed number of Err
// calls — deterministic "deadline expired mid-scan" without wall-clock
// races. Atomic because parallel pipeline stages poll concurrently.
type countdownCtx struct {
	context.Context
	n atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.n.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.n.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// cancelEngine builds an engine over enough vaccine docs that every
// search crosses multiple cancellation check intervals.
func cancelEngine(t *testing.T, nDocs int) *Engine {
	t.Helper()
	c := docstore.Open(docstore.WithShards(4)).Collection("pubs")
	for i := 0; i < nDocs; i++ {
		d := pub(fmt.Sprintf("p%04d", i),
			fmt.Sprintf("Vaccine efficacy study %d", i),
			"Vaccine outcomes and side effects in a large cohort.",
			"Body text about vaccine trials and immunization.")
		if _, err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(c)
}

func TestSearchAllContextCancelledNotCached(t *testing.T) {
	e := cancelEngine(t, 400)

	_, err := e.SearchAllContext(newCountdownCtx(1), "vaccine", 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("cancelled query left %d cache entries (cache poisoned)", st.Entries)
	}

	// the same query under a live context computes fresh and succeeds
	pg, err := e.SearchAllContext(context.Background(), "vaccine", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Total != 400 {
		t.Fatalf("post-cancel search Total = %d, want 400", pg.Total)
	}
	if st := e.CacheStats(); st.Entries != 1 {
		t.Fatalf("successful query cached %d entries, want 1", st.Entries)
	}
}

func TestSearchTablesContextCancelled(t *testing.T) {
	e := cancelEngine(t, 300)
	if _, err := e.SearchTablesContext(newCountdownCtx(1), "vaccine", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("tables err = %v, want context.Canceled", err)
	}
	if _, err := e.SearchFieldsContext(newCountdownCtx(1), FieldQuery{Title: "vaccine"}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("fields err = %v, want context.Canceled", err)
	}
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("cancelled queries left %d cache entries", st.Entries)
	}
}

func TestSearchContextDeadlineExceeded(t *testing.T) {
	e := cancelEngine(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchAllContext(ctx, "vaccine", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// a real already-expired deadline surfaces as DeadlineExceeded
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	if _, err := e.SearchAllContext(dctx, "vaccine", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("dead-context queries left %d cache entries", st.Entries)
	}
}

func TestTableCellMatchesContextCancelled(t *testing.T) {
	c := docstore.Open().Collection("pubs")
	d := pub("pt1", "Vaccine doses", "abstract", "body",
		jsondoc.Doc{"caption": "Table 1: doses", "rows": []any{
			[]any{"Vaccine", "Dose"},
			[]any{"Pfizer-BioNTech", "2"},
		}})
	if _, err := c.Insert(d); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.TableCellMatchesContext(ctx, "pt1", "vaccine"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
