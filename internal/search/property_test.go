package search

import (
	"fmt"
	"math/rand"
	"testing"

	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
)

// TestPaginationPartitionProperty: walking all pages of a query yields
// every matching document exactly once, in non-increasing score order.
func TestPaginationPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := docstore.Open(docstore.WithShards(3))
	c := s.Collection("pubs")
	words := []string{"masks", "vaccines", "fever", "aerosol", "dose"}
	nDocs := 120
	expectMatch := 0
	for i := 0; i < nDocs; i++ {
		hasMask := rng.Intn(2) == 0
		text := words[1+rng.Intn(len(words)-1)]
		if hasMask {
			text += " masks"
			expectMatch++
		}
		c.Insert(jsondoc.Doc{
			"_id": fmt.Sprintf("d%03d", i), "title": text,
			"abstract": "study " + text, "body_text": "",
		})
	}
	e := NewEngine(c)

	seen := map[string]bool{}
	prevScore := -1.0
	total := -1
	for page := 1; ; page++ {
		pg, err := e.SearchAll("masks", page)
		if err != nil {
			t.Fatal(err)
		}
		if total == -1 {
			total = pg.Total
		} else if pg.Total != total {
			t.Fatalf("Total changed across pages: %d vs %d", pg.Total, total)
		}
		if len(pg.Results) == 0 {
			break
		}
		for _, r := range pg.Results {
			if seen[r.DocID] {
				t.Fatalf("doc %s on two pages", r.DocID)
			}
			seen[r.DocID] = true
			if prevScore >= 0 && r.Score > prevScore+1e-9 {
				t.Fatalf("score rose across pages: %v after %v", r.Score, prevScore)
			}
			prevScore = r.Score
		}
	}
	if len(seen) != total {
		t.Fatalf("pages covered %d of %d results", len(seen), total)
	}
	if total != expectMatch {
		t.Fatalf("matched %d, expected %d", total, expectMatch)
	}
}

// TestEnginesAgreeOnTableOnlyTerms: any document found by the table
// engine must also be found by the all-fields engine (tables ⊆ all).
func TestEnginesAgreeOnTableOnlyTerms(t *testing.T) {
	e := testEngine(t)
	tp, err := e.SearchTables("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.SearchAll("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	allSet := map[string]bool{}
	for _, r := range all.Results {
		allSet[r.DocID] = true
	}
	for _, r := range tp.Results {
		if !allSet[r.DocID] {
			t.Fatalf("table hit %s missing from all-fields results", r.DocID)
		}
	}
}

// TestIndexConsistencyAfterChurn: add/remove cycles keep search results
// equal to a freshly built engine.
func TestIndexConsistencyAfterChurn(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	e := NewEngine(c)
	var kept []string
	for i := 0; i < 30; i++ {
		id, err := e.AddDocument(pub("", fmt.Sprintf("masks study %d", i), "about masks", ""))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := e.RemoveDocument(id); err != nil {
				t.Fatal(err)
			}
		} else {
			kept = append(kept, id)
		}
	}
	page, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != len(kept) {
		t.Fatalf("after churn: %d hits, want %d", page.Total, len(kept))
	}
	// fresh engine over the same collection agrees
	fresh := NewEngine(c)
	fp, _ := fresh.SearchAll("masks", 1)
	if fp.Total != page.Total {
		t.Fatalf("fresh engine disagrees: %d vs %d", fp.Total, page.Total)
	}
}
