package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"covidkg/internal/cord19"
	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
)

// TestPaginationPartitionProperty: walking all pages of a query yields
// every matching document exactly once, in non-increasing score order.
func TestPaginationPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := docstore.Open(docstore.WithShards(3))
	c := s.Collection("pubs")
	words := []string{"masks", "vaccines", "fever", "aerosol", "dose"}
	nDocs := 120
	expectMatch := 0
	for i := 0; i < nDocs; i++ {
		hasMask := rng.Intn(2) == 0
		text := words[1+rng.Intn(len(words)-1)]
		if hasMask {
			text += " masks"
			expectMatch++
		}
		c.Insert(jsondoc.Doc{
			"_id": fmt.Sprintf("d%03d", i), "title": text,
			"abstract": "study " + text, "body_text": "",
		})
	}
	e := NewEngine(c)

	seen := map[string]bool{}
	prevScore := -1.0
	total := -1
	for page := 1; ; page++ {
		pg, err := e.SearchAll("masks", page)
		if err != nil {
			t.Fatal(err)
		}
		if total == -1 {
			total = pg.Total
		} else if pg.Total != total {
			t.Fatalf("Total changed across pages: %d vs %d", pg.Total, total)
		}
		if len(pg.Results) == 0 {
			break
		}
		for _, r := range pg.Results {
			if seen[r.DocID] {
				t.Fatalf("doc %s on two pages", r.DocID)
			}
			seen[r.DocID] = true
			if prevScore >= 0 && r.Score > prevScore+1e-9 {
				t.Fatalf("score rose across pages: %v after %v", r.Score, prevScore)
			}
			prevScore = r.Score
		}
	}
	if len(seen) != total {
		t.Fatalf("pages covered %d of %d results", len(seen), total)
	}
	if total != expectMatch {
		t.Fatalf("matched %d, expected %d", total, expectMatch)
	}
}

// TestEnginesAgreeOnTableOnlyTerms: any document found by the table
// engine must also be found by the all-fields engine (tables ⊆ all).
func TestEnginesAgreeOnTableOnlyTerms(t *testing.T) {
	e := testEngine(t)
	tp, err := e.SearchTables("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	all, err := e.SearchAll("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	allSet := map[string]bool{}
	for _, r := range all.Results {
		allSet[r.DocID] = true
	}
	for _, r := range tp.Results {
		if !allSet[r.DocID] {
			t.Fatalf("table hit %s missing from all-fields results", r.DocID)
		}
	}
}

// TestParallelSerialIdentical: for every engine and worker count, the
// parallel execution path returns byte-identical pages to fully serial
// execution — ordering, scores, snippets, pagination, everything.
func TestParallelSerialIdentical(t *testing.T) {
	s := docstore.Open(docstore.WithShards(4))
	c := s.Collection("pubs")
	g := cord19.NewGenerator(17)
	for _, p := range g.Corpus(250) {
		if _, err := c.Insert(p.Doc()); err != nil {
			t.Fatal(err)
		}
	}
	serial := NewEngine(c)
	serial.SetWorkers(1)
	serial.SetCacheLimits(0, 0) // force recomputation each call

	queries := []string{"masks", "vaccine treatment", `"viral load"`, `fever "intensive care"`, "ventilators dose"}
	for _, workers := range []int{2, 8} {
		par := NewEngine(c)
		par.SetWorkers(workers)
		par.SetCacheLimits(0, 0)
		for _, q := range queries {
			for page := 1; page <= 3; page++ {
				want, err1 := serial.SearchAll(q, page)
				got, err2 := par.SearchAll(q, page)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("q=%q page=%d: err %v vs %v", q, page, err1, err2)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("q=%q page=%d workers=%d: parallel diverged from serial\nserial: %+v\nparallel: %+v",
						q, page, workers, want, got)
				}
			}
			wt, _ := serial.SearchTables(q, 1)
			gt, _ := par.SearchTables(q, 1)
			if !reflect.DeepEqual(wt, gt) {
				t.Fatalf("tables q=%q workers=%d diverged", q, workers)
			}
		}
	}
}

// TestIndexConsistencyAfterChurn: add/remove cycles keep search results
// equal to a freshly built engine.
func TestIndexConsistencyAfterChurn(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	e := NewEngine(c)
	var kept []string
	for i := 0; i < 30; i++ {
		id, err := e.AddDocument(pub("", fmt.Sprintf("masks study %d", i), "about masks", ""))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := e.RemoveDocument(id); err != nil {
				t.Fatal(err)
			}
		} else {
			kept = append(kept, id)
		}
	}
	page, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != len(kept) {
		t.Fatalf("after churn: %d hits, want %d", page.Total, len(kept))
	}
	// fresh engine over the same collection agrees
	fresh := NewEngine(c)
	fp, _ := fresh.SearchAll("masks", 1)
	if fp.Total != page.Total {
		t.Fatalf("fresh engine disagrees: %d vs %d", fp.Total, page.Total)
	}
}
