package search

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
	"covidkg/internal/pipeline"
	"covidkg/internal/textproc"
)

// expandSynonyms widens a stemmed term list with the synonym table so a
// query for "vaccine" also retrieves "immunization" documents (§5: the
// ranking function recognizes synonymy).
func expandSynonyms(stems []string) []string {
	out := append([]string(nil), stems...)
	seen := map[string]bool{}
	for _, s := range stems {
		seen[s] = true
	}
	for _, s := range stems {
		for _, syn := range textproc.SynonymStems(s) {
			if !seen[syn] {
				seen[syn] = true
				out = append(out, syn)
			}
		}
	}
	return out
}

// candidateFetchBatch is how many ids resolveCandidates hands to one
// Docs.GetMany call. Against the networked coordinator each batch is
// coalesced into a single frame per shard, so the batch size bounds
// both the per-frame payload and how much fetch work one worker owns.
const candidateFetchBatch = 256

// resolveCandidates fetches candidate documents by id through batched
// Docs.GetMany calls, the batches partitioned across the worker pool —
// in process each Get deep-copies the document, over the network each
// batch collapses to one frame per shard, and both dominate candidate
// materialization on large result sets. Ids that vanished under a
// concurrent delete are skipped; input order is preserved. A batch
// touching a dark shard does not fail the query: the shard lands in
// the missing list and the query degrades to a partial result over the
// surviving shards (the shard's breakers make the remaining fetches
// fail fast). Each batch checks the context before it starts, and a
// dead context is returned as ctx.Err().
func (e *Engine) resolveCandidates(ctx context.Context, ids []string, workers int) ([]jsondoc.Doc, []int, error) {
	docs := make([]jsondoc.Doc, len(ids))
	nb := (len(ids) + candidateFetchBatch - 1) / candidateFetchBatch
	missAt := make([][]int, nb)
	pipeline.ParallelChunks(nb, workers, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			if ctx.Err() != nil {
				return
			}
			start := b * candidateFetchBatch
			end := start + candidateFetchBatch
			if end > len(ids) {
				end = len(ids)
			}
			bd, bm, err := e.coll.GetMany(ctx, ids[start:end])
			if err != nil {
				return // only a dead context; reported below
			}
			copy(docs[start:end], bd)
			missAt[b] = bm
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	seen := map[int]bool{}
	var missing []int
	for _, bm := range missAt {
		for _, si := range bm {
			if !seen[si] {
				seen[si] = true
				missing = append(missing, si)
			}
		}
	}
	sort.Ints(missing)
	out := docs[:0]
	for _, d := range docs {
		if d != nil {
			out = append(out, d)
		}
	}
	return out, missing, nil
}

// scatterScanIDs lists the whole collection's doc ids shard by shard,
// the shards raced in parallel through hedged replica id reads. Unlike
// the old full-document scatter scan this clones nothing — downstream
// stages fetch only the documents they actually need (resolveCandidates
// for the pipeline's match stage, page materialization for top-k). A
// shard whose every replica is unavailable is skipped and reported in
// missing rather than failing the scan. Context errors still abort the
// whole scan. The returned ids are globally sorted.
func (e *Engine) scatterScanIDs(ctx context.Context, workers int) ([]string, []int, error) {
	n := e.coll.NumShards()
	snaps := make([][]string, n)
	errs := make([]error, n)
	pipeline.ParallelChunks(n, workers, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			snaps[si], errs[si] = e.coll.ShardIDsContext(ctx, si)
		}
	})
	var ids []string
	var missing []int
	for si := 0; si < n; si++ {
		switch err := errs[si]; {
		case err == nil:
			ids = append(ids, snaps[si]...)
		case errors.Is(err, docstore.ErrShardUnavailable):
			missing = append(missing, si)
		default:
			return nil, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sort.Strings(ids)
	return ids, missing, nil
}

// phraseCandidates resolves a quoted phrase to the documents containing
// every content word of the phrase (a superset of the true phrase
// matches, which still need substring verification). ok is false when
// the phrase has no indexable words and only a full scan can answer it.
func (e *Engine) phraseCandidates(phrase string, fields map[string]bool) ([]string, bool) {
	words := textproc.ContentWords(phrase)
	if len(words) == 0 {
		return nil, false
	}
	// intersect per-word field-restricted doc sets
	var out []string
	for i, w := range words {
		ids := e.idx.DocsWithAnyInFields([]string{w}, fields)
		if i == 0 {
			out = ids
		} else {
			out = intersectSorted(out, ids)
		}
		if len(out) == 0 {
			return []string{}, true
		}
	}
	return out, true
}

// queryCandidates resolves the full query (bare terms by index lookup,
// quoted phrases by all-words intersection) into a candidate id list.
// verify reports whether the candidates still need the match predicate
// (true when any phrase term participated). ok is false when the index
// cannot answer and a full scan is required.
func (e *Engine) queryCandidates(terms []textproc.QueryTerm, fields map[string]bool) (ids []string, verify, ok bool) {
	set := map[string]struct{}{}
	for _, t := range terms {
		if t.Exact {
			pc, pok := e.phraseCandidates(t.Text, fields)
			if !pok {
				return nil, false, false
			}
			verify = true
			for _, id := range pc {
				set[id] = struct{}{}
			}
			continue
		}
		for _, id := range e.idx.DocsWithAnyInFields(expandSynonyms([]string{t.Text}), fields) {
			set[id] = struct{}{}
		}
	}
	ids = make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, verify, true
}

// runSearch executes the shared §2.1 evaluation process, scaled out over
// the engine's worker pool: a parallel $match stage filters candidates
// (order-preserving, so results match serial execution exactly), a
// $project keeps only fields later stages need, and a parallel custom
// $function stage computes the ranking score over partitioned documents.
// Sorting and pagination conclude the pipeline. Every stage's latency is
// recorded in the metrics registry.
//
// When candidates is non-nil the inverted index already resolved a
// candidate set and the pipeline starts from those documents (fetched in
// parallel partitions); verifyCandidates keeps the match predicate
// active over them (needed when quoted phrases require substring
// confirmation). A nil candidates list falls back to a full scan, which
// the parallel $match also partitions across workers.
func (e *Engine) runSearch(
	ctx context.Context,
	matchPred func(jsondoc.Doc) bool,
	candidates []string,
	verifyCandidates bool,
	terms []textproc.QueryTerm,
	rankFields map[string]bool,
	snippetFields []string,
	pageNum int,
) (Page, error) {
	workers := e.Workers()

	// materialize the input stream: an id-only scatter scan supplies the
	// candidate list when the index could not (the match predicate then
	// stays active over the fetched docs), and candidate partitions
	// resolve in parallel. Both paths abandon work when the request
	// context dies.
	start := time.Now()
	var scanMissing []int
	if candidates == nil {
		var err error
		candidates, scanMissing, err = e.scatterScanIDs(ctx, workers)
		if err != nil {
			return Page{}, fmt.Errorf("search: scan: %w", err)
		}
		verifyCandidates = true
	}
	buf, missing, err := e.resolveCandidates(ctx, candidates, workers)
	if err != nil {
		return Page{}, fmt.Errorf("search: fetch: %w", err)
	}
	missing = mergeMissing(scanMissing, missing)
	if !verifyCandidates {
		matchPred = func(jsondoc.Doc) bool { return true }
	}
	e.observeStage("fetch", time.Since(start))

	p := pipeline.New(
		pipeline.ParallelMatch(matchPred).Workers(workers),
		// $project: only the fields needed "for carrying out calculations
		// and printing to the screen" travel further down the pipeline.
		pipeline.Project("title", "abstract", "body_text", "authors",
			"journal", "publish_date", "tables", "figure_captions"),
		pipeline.ParallelFunction("rank", func(d jsondoc.Doc) (jsondoc.Doc, error) {
			ex := e.scoreDoc(d, terms, rankFields)
			if err := d.Set("score", ex.Total); err != nil {
				return nil, err
			}
			return d, nil
		}).Workers(workers),
		pipeline.SortByDesc("score"),
	).Observe(func(stage string, d time.Duration, in, out int) {
		e.observeStage(stageMetricName(stage), d)
	})
	docs, err := p.RunContext(ctx, pipeline.SliceSource(buf))
	if err != nil {
		return Page{}, err
	}

	results := make([]Result, 0, len(docs))
	byID := make(map[string]jsondoc.Doc, len(docs))
	for _, d := range docs {
		score, _ := d.GetNumber("score")
		r := resultFromDoc(d, score)
		byID[r.DocID] = d
		results = append(results, r)
	}
	sortResults(results)
	page := paginate(results, pageNum)
	if len(missing) > 0 {
		sort.Ints(missing)
		page.Partial = true
		page.MissingShards = missing
	}
	// snippets are expensive (tokenization over full texts); compute them
	// only for the page actually returned
	start = time.Now()
	for i := range page.Results {
		if ctx.Err() != nil {
			return Page{}, fmt.Errorf("search: snippets: %w", ctx.Err())
		}
		d := byID[page.Results[i].DocID]
		texts := fieldTexts(d)
		for _, f := range snippetFields {
			for _, txt := range texts[f] {
				if sn, ok := makeSnippet(f, txt, terms); ok {
					page.Results[i].Snippets = append(page.Results[i].Snippets, sn)
				}
			}
		}
	}
	e.observeStage("snippet", time.Since(start))
	return page, nil
}

// observeStage records one named stage latency.
func (e *Engine) observeStage(stage string, d time.Duration) {
	e.met.Histogram("search.stage." + stage).Observe(d)
}

// stageMetricName maps pipeline stage names to stable metric suffixes.
func stageMetricName(stage string) string {
	switch {
	case strings.HasPrefix(stage, "$match"), stage == "$source+$match":
		return "match"
	case strings.HasPrefix(stage, "$function"):
		return "score"
	case stage == "$sort":
		return "sort"
	case stage == "$project":
		return "project"
	default:
		return strings.TrimPrefix(stage, "$")
	}
}

// clampPage normalizes a requested page number before it reaches the
// cache key or paginate, so page 0 and page 1 share one cache entry.
func clampPage(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// canonicalTerms renders parsed query terms into a stable cache-key
// fragment, so queries differing only in whitespace, case, or stopwords
// share a cache entry.
func canonicalTerms(terms []textproc.QueryTerm) string {
	var b strings.Builder
	for i, t := range terms {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		if t.Exact {
			b.WriteString("e:")
		} else {
			b.WriteString("s:")
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// queryScope derives the set of index terms whose writes can change the
// query's answer: the stemmed bare terms plus their synonym expansions
// (candidate generation looks exactly those up), and the content words
// of quoted phrases (phrase candidates intersect those posting lists).
// all reports an unbounded scope — a phrase with no content words falls
// back to a full scan, so any write can change its answer and the entry
// must be validated against the index's global write sequence instead.
func (e *Engine) queryScope(terms []textproc.QueryTerm) (scope []string, all bool) {
	seen := map[string]bool{}
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			scope = append(scope, s)
		}
	}
	noSyn := e.RankOptions().NoSynonyms
	for _, t := range terms {
		if t.Exact {
			words := textproc.ContentWords(t.Text)
			if len(words) == 0 {
				all = true
				continue
			}
			for _, w := range words {
				add(w)
			}
			continue
		}
		add(t.Text)
		if !noSyn {
			for _, syn := range textproc.SynonymStems(t.Text) {
				add(syn)
			}
		}
	}
	return scope, all
}

// currentScope captures the invalidation fingerprint for a query at this
// instant: the engine's global generation plus the per-term index write
// generations of the query's scope (or the global write sequence when
// the scope is unbounded).
func (e *Engine) currentScope(terms []textproc.QueryTerm) cacheScope {
	sc := cacheScope{gen: e.gen.Load()}
	sc.terms, sc.all = e.queryScope(terms)
	if sc.all {
		sc.writeSeq = e.idx.WriteSeq()
	} else {
		sc.gens = e.idx.TermGens(sc.terms)
	}
	return sc
}

// cachedSearch funnels one engine's query through the query cache: a hit
// returns the cached page; a miss computes, then stores the page under
// the scope fingerprint captured *before* computing, so a concurrent
// write to any of the query's terms (or a removal/option change, which
// bump the global generation) invalidates it while writes to unrelated
// terms leave it warm. The deliberate staleness window: a new document
// shifts corpus-wide statistics (N in IDF) by one, and pages whose terms
// the document does not touch keep their pre-write scores until one of
// their own terms is written — bounded drift traded for a cache that
// survives a live ingest stream. Total latency per engine and cache
// hit/miss/eviction counts are recorded in the metrics registry.
//
// A compute abandoned by cancellation (or failed for any other reason)
// returns its error WITHOUT touching the cache — partial results from a
// dead request must never be served to a live one. Likewise a page
// degraded by a dark shard (Partial) is returned but never cached: the
// shard may recover the next instant, and a cached partial page would
// keep serving the hole until the entry went stale.
func (e *Engine) cachedSearch(ctx context.Context, engine, canon string, pageNum int, terms []textproc.QueryTerm, compute func(context.Context) (Page, error)) (Page, error) {
	start := time.Now()
	e.met.Counter("search.queries").Inc()
	cache := e.cache.Load()
	key := cacheKey{engine: engine, query: canon, page: pageNum}
	scope := e.currentScope(terms)
	if pg, ok := cache.get(key, scope); ok {
		e.met.Counter("search.cache.hits").Inc()
		e.met.Histogram("search.latency." + engine).Observe(time.Since(start))
		return pg, nil
	}
	e.met.Counter("search.cache.misses").Inc()
	pg, err := compute(ctx)
	if err != nil {
		return Page{}, err
	}
	// belt and braces: even if a compute path missed a cancellation, a
	// page produced under a dead context is not stored
	if pg.Partial {
		e.met.Counter("partial_responses").Inc()
	} else if ctx.Err() == nil {
		if ev := cache.put(key, pg, scope); ev > 0 {
			e.met.Counter("search.cache.evictions").Add(ev)
		}
	}
	e.met.Histogram("search.latency." + engine).Observe(time.Since(start))
	return pg, nil
}

// mergeMissing unions two dark-shard lists without duplicates (order is
// normalized later, when the page is marked partial).
func mergeMissing(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	seen := map[int]bool{}
	for _, si := range a {
		seen[si] = true
	}
	for _, si := range b {
		if !seen[si] {
			seen[si] = true
			a = append(a, si)
		}
	}
	return a
}

// intersectSorted intersects two sorted string slices.
func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// anyTermInFields reports whether at least one query term matches any of
// the named fields of the document. Bare terms match through the synonym
// table (termMatchesSyn), keeping this predicate consistent with
// candidate generation: a document admitted for "vaccine" via
// "immunization" stays a hit when a quoted phrase forces re-verification.
func (e *Engine) anyTermInFields(d jsondoc.Doc, terms []textproc.QueryTerm, fields ...string) bool {
	texts := fieldTexts(d)
	for _, f := range fields {
		for _, txt := range texts[f] {
			for _, t := range terms {
				if e.termMatchesSyn(t, txt) {
					return true
				}
			}
		}
	}
	return false
}

// FieldQuery is the input of the title/abstract/caption engine: any
// subset of the three fields may carry a query.
type FieldQuery struct {
	Title    string
	Abstract string
	Caption  string
}

// SearchFields is engine §2.1.1 over a background context.
func (e *Engine) SearchFields(q FieldQuery, pageNum int) (Page, error) {
	return e.SearchFieldsContext(context.Background(), q, pageNum)
}

// SearchFieldsContext is engine §2.1.1 — search over paper title,
// abstract, and table captions. "The search fields are inclusive": every
// non-empty field must match at least one of its terms in that field, or
// the document is dropped regardless of other fields. Cancelling ctx
// abandons the query mid-pipeline; abandoned pages are never cached.
func (e *Engine) SearchFieldsContext(ctx context.Context, q FieldQuery, pageNum int) (Page, error) {
	type fieldTerm struct {
		field string
		terms []textproc.QueryTerm
	}
	var conds []fieldTerm
	var allTerms []textproc.QueryTerm
	add := func(field, query string) error {
		if query == "" {
			return nil
		}
		terms, err := queryOrError(query)
		if err != nil {
			return err
		}
		conds = append(conds, fieldTerm{field, terms})
		allTerms = append(allTerms, terms...)
		return nil
	}
	if err := add(FieldTitle, q.Title); err != nil {
		return Page{}, err
	}
	if err := add(FieldAbstract, q.Abstract); err != nil {
		return Page{}, err
	}
	if err := add(FieldTableCaption, q.Caption); err != nil {
		return Page{}, err
	}
	if len(conds) == 0 {
		return Page{}, fmt.Errorf("search: %w: all query fields empty", ErrBadQuery)
	}
	pageNum = clampPage(pageNum)

	var canon strings.Builder
	for i, c := range conds {
		if i > 0 {
			canon.WriteByte(0x1e)
		}
		canon.WriteString(c.field + "=" + canonicalTerms(c.terms))
	}
	return e.cachedSearch(ctx, "fields", canon.String(), pageNum, allTerms, func(ctx context.Context) (Page, error) {
		rankFields := map[string]bool{FieldTitle: true, FieldAbstract: true, FieldTableCaption: true}
		match := func(d jsondoc.Doc) bool {
			for _, c := range conds {
				if !e.anyTermInFields(d, c.terms, c.field) {
					return false
				}
			}
			return true
		}
		// Inclusive semantics via the index: intersect per-field candidate
		// sets; quoted phrases keep the verification predicate active.
		start := time.Now()
		var candidates []string
		verify := false
		resolvable := true
		for i, c := range conds {
			ids, v, ok := e.queryCandidates(c.terms, map[string]bool{c.field: true})
			if !ok {
				resolvable = false
				break
			}
			verify = verify || v
			if i == 0 {
				candidates = ids
			} else {
				candidates = intersectSorted(candidates, ids)
			}
			if len(candidates) == 0 {
				candidates = []string{}
				break
			}
		}
		if !resolvable {
			candidates, verify = nil, false
		} else if verify && candidates == nil {
			candidates = []string{}
		}
		e.observeStage("candidates", time.Since(start))
		// Results format: "table captions first, the title and authors and
		// the full abstract" — snippet order encodes that.
		return e.runQuery(ctx, match, candidates, verify, allTerms, rankFields,
			[]string{FieldTableCaption, FieldTitle, FieldAbstract}, pageNum)
	})
}

// SearchAll is engine §2.1.2 over a background context.
func (e *Engine) SearchAll(query string, pageNum int) (Page, error) {
	return e.SearchAllContext(context.Background(), query, pageNum)
}

// SearchAllContext is engine §2.1.2 — search over all publication
// fields, for when "where the term is referenced is unimportant".
// Results carry excerpts from every matching field: abstract, body text,
// table captions, tables, and figure captions. Cancelling ctx abandons
// the query mid-pipeline; abandoned pages are never cached.
func (e *Engine) SearchAllContext(ctx context.Context, query string, pageNum int) (Page, error) {
	terms, err := queryOrError(query)
	if err != nil {
		return Page{}, err
	}
	pageNum = clampPage(pageNum)
	return e.cachedSearch(ctx, "all", canonicalTerms(terms), pageNum, terms, func(ctx context.Context) (Page, error) {
		allFields := []string{FieldTitle, FieldAbstract, FieldBody,
			FieldTableCaption, FieldTableCell, FieldFigureCaption}
		match := func(d jsondoc.Doc) bool {
			return e.anyTermInFields(d, terms, allFields...)
		}
		start := time.Now()
		candidates, verify, ok := e.queryCandidates(terms, nil)
		e.observeStage("candidates", time.Since(start))
		if !ok {
			candidates, verify = nil, false
		}
		return e.runQuery(ctx, match, candidates, verify, terms, nil,
			[]string{FieldAbstract, FieldBody, FieldTableCaption, FieldTableCell, FieldFigureCaption},
			pageNum)
	})
}

// SearchTables is engine §2.1.3 over a background context.
func (e *Engine) SearchTables(query string, pageNum int) (Page, error) {
	return e.SearchTablesContext(context.Background(), query, pageNum)
}

// SearchTablesContext is engine §2.1.3 — search over paper tables only:
// "a product of regular expression search over table captions and all of
// the table's data". Ranked with the same weighted-feature function,
// restricted to table fields. Cancelling ctx abandons the query
// mid-pipeline; abandoned pages are never cached.
func (e *Engine) SearchTablesContext(ctx context.Context, query string, pageNum int) (Page, error) {
	terms, err := queryOrError(query)
	if err != nil {
		return Page{}, err
	}
	pageNum = clampPage(pageNum)
	return e.cachedSearch(ctx, "tables", canonicalTerms(terms), pageNum, terms, func(ctx context.Context) (Page, error) {
		tableFields := map[string]bool{FieldTableCaption: true, FieldTableCell: true}
		match := func(d jsondoc.Doc) bool {
			return e.anyTermInFields(d, terms, FieldTableCaption, FieldTableCell)
		}
		start := time.Now()
		candidates, verify, ok := e.queryCandidates(terms, tableFields)
		e.observeStage("candidates", time.Since(start))
		if !ok {
			candidates, verify = nil, false
		}
		// The table engine also shows where the terms land in the abstract
		// for context (Figure 4 shows an abstract match below the table).
		return e.runQuery(ctx, match, candidates, verify, terms, tableFields,
			[]string{FieldTableCaption, FieldTableCell, FieldAbstract}, pageNum)
	})
}

// CellMatch pinpoints where a query landed inside one stored table — the
// coordinates the Figure 4 interface paints red.
type CellMatch struct {
	TableIndex     int      // position within the publication's tables
	Caption        string   // the table's caption
	CaptionMatched bool     // the caption itself matched
	Cells          [][2]int // (row, col) of every matched cell
}

// TableCellMatches locates every matched caption and cell of a stored
// publication for the query, table by table, over a background context.
func (e *Engine) TableCellMatches(docID, query string) ([]CellMatch, error) {
	return e.TableCellMatchesContext(context.Background(), docID, query)
}

// TableCellMatchesContext is TableCellMatches under a request context:
// the per-table matching loop checks ctx between tables (a table is the
// unit of work — cell loops are short) and returns ctx.Err() when the
// caller is gone.
func (e *Engine) TableCellMatchesContext(ctx context.Context, docID, query string) ([]CellMatch, error) {
	terms, err := queryOrError(query)
	if err != nil {
		return nil, err
	}
	d, err := e.coll.Get(docID)
	if err != nil {
		return nil, err
	}
	var out []CellMatch
	for ti, tv := range d.GetArray("tables") {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("search: table matches: %w", ctx.Err())
		}
		tm, _ := tv.(map[string]any)
		if tm == nil {
			continue
		}
		td := jsondoc.Doc(tm)
		cm := CellMatch{TableIndex: ti, Caption: td.GetString("caption")}
		for _, t := range terms {
			if termMatches(t, cm.Caption) {
				cm.CaptionMatched = true
				break
			}
		}
		for ri, rv := range td.GetArray("rows") {
			ra, _ := rv.([]any)
			for ci, cv := range ra {
				s, ok := cv.(string)
				if !ok || s == "" {
					continue
				}
				for _, t := range terms {
					if termMatches(t, s) {
						cm.Cells = append(cm.Cells, [2]int{ri, ci})
						break
					}
				}
			}
		}
		if cm.CaptionMatched || len(cm.Cells) > 0 {
			out = append(out, cm)
		}
	}
	return out, nil
}

// MatchingTables returns, for one result document, the parsed tables that
// match the query — the expandable per-table view of Figure 4.
func (e *Engine) MatchingTables(docID, query string) ([]jsondoc.Doc, error) {
	terms, err := queryOrError(query)
	if err != nil {
		return nil, err
	}
	d, err := e.coll.Get(docID)
	if err != nil {
		return nil, err
	}
	var out []jsondoc.Doc
	for _, tv := range d.GetArray("tables") {
		tm, _ := tv.(map[string]any)
		if tm == nil {
			continue
		}
		td := jsondoc.Doc(tm)
		text := td.GetString("caption")
		for _, rv := range td.GetArray("rows") {
			ra, _ := rv.([]any)
			for _, cv := range ra {
				if s, ok := cv.(string); ok {
					text += " " + s
				}
			}
		}
		for _, t := range terms {
			if termMatches(t, text) {
				out = append(out, td)
				break
			}
		}
	}
	return out, nil
}
