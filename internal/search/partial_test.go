package search

import (
	"context"
	"fmt"
	"testing"
	"time"

	"covidkg/internal/breaker"
	"covidkg/internal/docstore"
	"covidkg/internal/failpoint"
	"covidkg/internal/metrics"
)

// partialFixture builds an engine over a replicated 4-shard store with a
// failpoint registry, seeded so every shard holds several matching docs.
func partialFixture(t *testing.T) (*Engine, *docstore.Collection, *failpoint.Registry, *metrics.Registry) {
	t.Helper()
	fp := failpoint.New(1)
	fp.SetSleeper(func(time.Duration) {})
	s := docstore.Open(
		docstore.WithShards(4),
		docstore.WithReplicas(3),
		docstore.WithFailpoints(fp),
		docstore.WithMetrics(metrics.NewRegistry()),
		docstore.WithBreaker(breaker.Config{Threshold: 2, Cooldown: time.Millisecond}),
		docstore.WithHedgeDelay(time.Millisecond),
	)
	c := s.Collection("pubs")
	for i := 0; i < 40; i++ {
		d := pub(fmt.Sprintf("p%02d", i),
			fmt.Sprintf("Covid study %d", i),
			"Results obtained with the standard covid assay.",
			"Body text about covid outcomes with the usual caveats.")
		if _, err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(c)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	return e, c, fp, reg
}

// darkenShard downs every replica of one shard and returns its index
// plus how many seeded docs live there.
func darkenShard(c *docstore.Collection, fp *failpoint.Registry) (int, int) {
	si := c.ShardOfID("p00")
	fp.Set(fmt.Sprintf("shard%d/*", si), failpoint.Rule{Down: true})
	n := 0
	for i := 0; i < 40; i++ {
		if c.ShardOfID(fmt.Sprintf("p%02d", i)) == si {
			n++
		}
	}
	return si, n
}

func TestSearchPartialOnDarkShardCandidatePath(t *testing.T) {
	e, c, fp, reg := partialFixture(t)
	si, dark := darkenShard(c, fp)
	if dark == 0 {
		t.Fatal("no seeded doc landed on the darkened shard")
	}

	// "covid" resolves through the inverted index → candidate path
	pg, err := e.SearchAllContext(context.Background(), "covid", 1)
	if err != nil {
		t.Fatalf("search with dark shard must degrade, got error: %v", err)
	}
	if !pg.Partial {
		t.Fatal("page not marked partial with a dark shard")
	}
	if len(pg.MissingShards) != 1 || pg.MissingShards[0] != si {
		t.Fatalf("MissingShards = %v, want [%d]", pg.MissingShards, si)
	}
	if pg.Total != 40-dark {
		t.Fatalf("Total = %d, want %d (40 minus %d dark)", pg.Total, 40-dark, dark)
	}
	for _, r := range pg.Results {
		if c.ShardOfID(r.DocID) == si {
			t.Fatalf("result %s came from the dark shard", r.DocID)
		}
	}
	if got := reg.Counter("partial_responses").Value(); got != 1 {
		t.Fatalf("partial_responses = %d, want 1", got)
	}
}

func TestSearchPartialOnDarkShardScanPath(t *testing.T) {
	e, c, fp, _ := partialFixture(t)
	si, dark := darkenShard(c, fp)

	// a stopword-only phrase is unindexable → full-scan path; the seeded
	// docs contain the literal substring "with the"
	pg, err := e.SearchAllContext(context.Background(), `"with the"`, 1)
	if err != nil {
		t.Fatalf("scan-path search with dark shard must degrade, got error: %v", err)
	}
	if !pg.Partial || len(pg.MissingShards) != 1 || pg.MissingShards[0] != si {
		t.Fatalf("partial=%v missing=%v, want true [%d]", pg.Partial, pg.MissingShards, si)
	}
	if pg.Total != 40-dark {
		t.Fatalf("Total = %d, want %d", pg.Total, 40-dark)
	}
}

func TestPartialPageNeverCached(t *testing.T) {
	e, c, fp, _ := partialFixture(t)
	si, _ := darkenShard(c, fp)

	pg, err := e.SearchAllContext(context.Background(), "covid", 1)
	if err != nil || !pg.Partial {
		t.Fatalf("expected partial page, got partial=%v err=%v", pg.Partial, err)
	}

	// shard recovers: clear faults, let the breaker cooldown elapse, and
	// re-close the replica breakers with probe reads
	fp.ClearAll()
	time.Sleep(5 * time.Millisecond)
	id := ""
	for i := 0; i < 40; i++ {
		if cand := fmt.Sprintf("p%02d", i); c.ShardOfID(cand) == si {
			id = cand
			break
		}
	}
	for i := 0; i < 8; i++ {
		c.Get(id)
	}

	// the identical query must now return the full corpus — a cached
	// partial page would keep serving the hole
	pg, err = e.SearchAllContext(context.Background(), "covid", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Partial || pg.Total != 40 {
		t.Fatalf("recovered search partial=%v total=%d, want false 40", pg.Partial, pg.Total)
	}
}

func TestHealthySearchNotPartial(t *testing.T) {
	e, _, _, reg := partialFixture(t)
	pg, err := e.SearchAllContext(context.Background(), "covid", 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Partial || len(pg.MissingShards) != 0 {
		t.Fatalf("healthy search marked partial: %v %v", pg.Partial, pg.MissingShards)
	}
	if got := reg.Counter("partial_responses").Value(); got != 0 {
		t.Fatalf("partial_responses = %d, want 0", got)
	}
}
