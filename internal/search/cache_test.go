package search

import (
	"fmt"
	"strings"
	"testing"
)

func fakePage(id string, titleLen int) Page {
	return Page{
		Results: []Result{{DocID: id, Title: strings.Repeat("x", titleLen)}},
		Total:   1, PageNum: 1, PerPage: PerPage, NumPages: 1,
	}
}

func TestCacheEntryBoundEvictsLRU(t *testing.T) {
	c := newQueryCache(3, 1<<20)
	for i := 0; i < 4; i++ {
		c.put(cacheKey{"all", fmt.Sprintf("q%d", i), 1}, fakePage("d", 10), cacheScope{gen: 1})
	}
	st := c.stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	// q0 was least recently used and must be gone; q3 must be present
	if _, ok := c.get(cacheKey{"all", "q0", 1}, cacheScope{gen: 1}); ok {
		t.Fatal("evicted entry still served")
	}
	if _, ok := c.get(cacheKey{"all", "q3", 1}, cacheScope{gen: 1}); !ok {
		t.Fatal("recent entry missing")
	}
	// touching q1 then inserting must evict q2, not q1
	c.get(cacheKey{"all", "q1", 1}, cacheScope{gen: 1})
	c.put(cacheKey{"all", "q4", 1}, fakePage("d", 10), cacheScope{gen: 1})
	if _, ok := c.get(cacheKey{"all", "q1", 1}, cacheScope{gen: 1}); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.get(cacheKey{"all", "q2", 1}, cacheScope{gen: 1}); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestCacheByteBound(t *testing.T) {
	one := pageBytes(fakePage("d", 1000))
	c := newQueryCache(100, 2*one+one/2) // room for two big pages, not three
	for i := 0; i < 3; i++ {
		c.put(cacheKey{"all", fmt.Sprintf("q%d", i), 1}, fakePage("d", 1000), cacheScope{gen: 1})
	}
	st := c.stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d", st.Entries)
	}
	if st.Bytes > 2*one+one/2 {
		t.Fatalf("bytes = %d over bound", st.Bytes)
	}
	// a single page larger than the whole budget is never cached
	c2 := newQueryCache(100, 64)
	c2.put(cacheKey{"all", "big", 1}, fakePage("d", 10000), cacheScope{gen: 1})
	if st := c2.stats(); st.Entries != 0 {
		t.Fatalf("oversized page cached: %+v", st)
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	c := newQueryCache(10, 1<<20)
	key := cacheKey{"all", "masks", 1}
	c.put(key, fakePage("d1", 10), cacheScope{gen: 5})
	if _, ok := c.get(key, cacheScope{gen: 5}); !ok {
		t.Fatal("same-generation lookup missed")
	}
	// generation moved on: entry is stale, removed on sight
	if _, ok := c.get(key, cacheScope{gen: 6}); ok {
		t.Fatal("stale entry served")
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("stale entry retained: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*queryCache{newQueryCache(0, 1<<20), newQueryCache(10, 0)} {
		c.put(cacheKey{"all", "q", 1}, fakePage("d", 10), cacheScope{gen: 1})
		if _, ok := c.get(cacheKey{"all", "q", 1}, cacheScope{gen: 1}); ok {
			t.Fatal("disabled cache served an entry")
		}
		if st := c.stats(); st.Entries != 0 {
			t.Fatalf("disabled cache stored: %+v", st)
		}
	}
}

// TestEngineCacheHitAndIngestInvalidation is the end-to-end invalidation
// contract: repeat queries hit the cache, and an ingest between two
// identical queries makes the second one see the new document.
func TestEngineCacheHitAndIngestInvalidation(t *testing.T) {
	e := testEngine(t)
	p1, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Total != p1.Total {
		t.Fatalf("repeat query changed: %d vs %d", p2.Total, p1.Total)
	}
	st := e.CacheStats()
	if st.Hits < 1 {
		t.Fatalf("repeat query did not hit cache: %+v", st)
	}

	if _, err := e.AddDocument(pub("", "New masks meta-analysis", "Masks again.", "")); err != nil {
		t.Fatal(err)
	}
	p3, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Total != p1.Total+1 {
		t.Fatalf("stale page after ingest: total %d, want %d", p3.Total, p1.Total+1)
	}

	// normalization: whitespace/case variants share one entry
	before := e.CacheStats().Hits
	if _, err := e.SearchAll("  MASKS ", 1); err != nil {
		t.Fatal(err)
	}
	if e.CacheStats().Hits != before+1 {
		t.Fatal("normalized query variant missed the cache")
	}
}

func TestSetRankOptionsInvalidatesCache(t *testing.T) {
	e := testEngine(t)
	if _, err := e.SearchAll("ventilators", 1); err != nil {
		t.Fatal(err)
	}
	gen := e.Generation()
	e.SetRankOptions(RankOptions{NoSynonyms: true})
	if e.Generation() == gen {
		t.Fatal("option change did not bump generation")
	}
	// synonym-only doc p2 ("immunization") must vanish under NoSynonyms…
	// here: recompute happens, not a stale cached page
	p, err := e.SearchAll("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = p // contents checked elsewhere; the point is no stale serve
	if e.CacheStats().Hits != 0 {
		t.Fatalf("served stale page across option change: %+v", e.CacheStats())
	}
}
