package search

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"covidkg/internal/cord19"
	"covidkg/internal/docstore"
	"covidkg/internal/metrics"
)

// parityEngines builds two engines over one collection: a (index-native
// top-k scoring, own metrics registry so path counters are observable)
// and b (pipeline path forced). Caches are disabled so every call
// recomputes.
func parityEngines(t *testing.T, c *docstore.Collection) (a, b *Engine, reg *metrics.Registry) {
	t.Helper()
	reg = metrics.NewRegistry()
	a = NewEngine(c)
	a.SetMetrics(reg)
	a.SetCacheLimits(0, 0)
	b = NewEngine(c)
	b.SetCacheLimits(0, 0)
	b.SetIndexScoring(false)
	return a, b, reg
}

// diffPages asserts two pages are deeply equal AND byte-identical once
// serialized — scores, order, tiebreaks, snippets, NumPages, all of it.
func diffPages(t *testing.T, label string, idx, pipe Page) {
	t.Helper()
	if !reflect.DeepEqual(idx, pipe) {
		t.Fatalf("%s: index path diverged from pipeline path\nindex:    %+v\npipeline: %+v", label, idx, pipe)
	}
	bi, err1 := json.Marshal(idx)
	bp, err2 := json.Marshal(pipe)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: marshal: %v / %v", label, err1, err2)
	}
	if !bytes.Equal(bi, bp) {
		t.Fatalf("%s: pages not byte-identical\nindex:    %s\npipeline: %s", label, bi, bp)
	}
}

// TestTopKPipelineParityRandomized: over randomized corpora and query
// mixes — single terms, multi-term, synonym-bearing, quoted phrases
// (which force the pipeline fallback on both engines), and mixed shapes
// — the index-native top-k path returns byte-identical pages to the
// full materialize-match-rank pipeline, across pages and engines.
func TestTopKPipelineParityRandomized(t *testing.T) {
	words := []string{"masks", "vaccine", "fever", "dose", "ventilators",
		"transmission", "outcomes", "treatment", "immunization", "aerosol"}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := docstore.Open(docstore.WithShards(4))
		c := s.Collection("pubs")
		for _, p := range cord19.NewGenerator(seed).Corpus(80 + int(seed)*60) {
			if _, err := c.Insert(p.Doc()); err != nil {
				t.Fatal(err)
			}
		}
		// synonym-heavy docs: contain only synonyms of likely query terms,
		// so synonym-only recall differences between paths would surface
		for i := 0; i < 10; i++ {
			if _, err := c.Insert(pub(fmt.Sprintf("syn%02d", i),
				"Inoculation schedules in pediatric cohorts",
				"Coronavirus immunization outcomes after inoculation.",
				"Body text about sars-cov-2 and immunization drives.")); err != nil {
				t.Fatal(err)
			}
		}
		a, b, reg := parityEngines(t, c)

		var queries []string
		for i := 0; i < 12; i++ {
			n := 1 + rng.Intn(3)
			q := ""
			for j := 0; j < n; j++ {
				if j > 0 {
					q += " "
				}
				q += words[rng.Intn(len(words))]
			}
			queries = append(queries, q)
		}
		queries = append(queries,
			`"intensive care"`,          // quoted phrase → fallback on both
			`vaccine "viral load"`,      // mixed term+phrase → fallback
			"immunization pediatric",    // synonym-bearing multi-term
			"nosuchword",                // zero-hit
		)

		for _, q := range queries {
			for page := 1; page <= 3; page++ {
				pa, err1 := a.SearchAll(q, page)
				pb, err2 := b.SearchAll(q, page)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed=%d q=%q page=%d: err %v vs %v", seed, q, page, err1, err2)
				}
				if err1 != nil {
					continue
				}
				diffPages(t, fmt.Sprintf("seed=%d all q=%q page=%d", seed, q, page), pa, pb)
			}
			ta, err1 := a.SearchTables(q, 1)
			tb, err2 := b.SearchTables(q, 1)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed=%d tables q=%q: err %v vs %v", seed, q, err1, err2)
			}
			if err1 == nil {
				diffPages(t, fmt.Sprintf("seed=%d tables q=%q", seed, q), ta, tb)
			}
		}

		// fields engine with random per-field combos
		for i := 0; i < 6; i++ {
			fq := FieldQuery{Title: words[rng.Intn(len(words))]}
			if rng.Intn(2) == 0 {
				fq.Abstract = words[rng.Intn(len(words))]
			}
			if rng.Intn(3) == 0 {
				fq.Caption = words[rng.Intn(len(words))]
			}
			page := 1 + rng.Intn(2)
			fa, err1 := a.SearchFields(fq, page)
			fb2, err2 := b.SearchFields(fq, page)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed=%d fields %+v: err %v vs %v", seed, fq, err1, err2)
			}
			if err1 == nil {
				diffPages(t, fmt.Sprintf("seed=%d fields %+v page=%d", seed, fq, page), fa, fb2)
			}
		}

		if got := reg.Counter("index_path_queries").Value(); got == 0 {
			t.Fatalf("seed=%d: index path served 0 queries", seed)
		}
		if got := reg.Counter("fallback_path_queries").Value(); got == 0 {
			t.Fatalf("seed=%d: phrase queries should have hit the fallback path", seed)
		}
	}
}

// TestTopKPipelineParityAblations: the parity guarantee holds under
// every ranking-ablation option, which exercise the bound construction
// (FlatFields/NoIDF change the per-term maxima, NoSynonyms drops
// expansion slots, NoProximity/NoCoverage drop bound components).
func TestTopKPipelineParityAblations(t *testing.T) {
	s := docstore.Open(docstore.WithShards(3))
	c := s.Collection("pubs")
	for _, p := range cord19.NewGenerator(99).Corpus(150) {
		if _, err := c.Insert(p.Doc()); err != nil {
			t.Fatal(err)
		}
	}
	opts := []RankOptions{
		{},
		{NoSynonyms: true},
		{FlatFields: true},
		{NoIDF: true},
		{NoProximity: true, NoCoverage: true},
		{NoSynonyms: true, FlatFields: true, NoIDF: true, NoProximity: true, NoCoverage: true},
	}
	queries := []string{"vaccine", "masks transmission", "fever dose outcomes", "immunization"}
	for _, o := range opts {
		a, b, _ := parityEngines(t, c)
		a.SetRankOptions(o)
		b.SetRankOptions(o)
		for _, q := range queries {
			for page := 1; page <= 2; page++ {
				pa, err1 := a.SearchAll(q, page)
				pb, err2 := b.SearchAll(q, page)
				if err1 != nil || err2 != nil {
					t.Fatalf("opts=%+v q=%q: %v / %v", o, q, err1, err2)
				}
				diffPages(t, fmt.Sprintf("opts=%+v q=%q page=%d", o, q, page), pa, pb)
			}
		}
	}
}

// TestTopKPruningActuallyPrunes: a corpus engineered so docs matching
// only a weak term cannot displace full-coverage title matches must
// trip the max-score bound — and stay page-identical to the pipeline.
func TestTopKPruningActuallyPrunes(t *testing.T) {
	s := docstore.Open(docstore.WithShards(2))
	c := s.Collection("pubs")
	// 25 strong docs: "masks" in the title (field weight 3) — enough to
	// fill the k=20 heap for page 1
	for i := 0; i < 25; i++ {
		if _, err := c.Insert(pub(fmt.Sprintf("strong%02d", i),
			fmt.Sprintf("Masks zebra policy %d", i), "abstract text", "body text")); err != nil {
			t.Fatal(err)
		}
	}
	// 100 weak docs: only "zebra", once, in the body (weight 1)
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(pub(fmt.Sprintf("weak%03d", i),
			fmt.Sprintf("Unrelated study %d", i), "other abstract", "zebra sightings")); err != nil {
			t.Fatal(err)
		}
	}
	a, b, reg := parityEngines(t, c)
	pa, err := a.SearchAll("masks zebra", 1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.SearchAll("masks zebra", 1)
	if err != nil {
		t.Fatal(err)
	}
	diffPages(t, "pruning corpus", pa, pb)
	if pa.Total != 125 {
		t.Fatalf("Total = %d, want 125", pa.Total)
	}
	for _, r := range pa.Results {
		if len(r.DocID) < 6 || r.DocID[:6] != "strong" {
			t.Fatalf("weak doc %s outranked a full-coverage title match", r.DocID)
		}
	}
	if got := reg.Counter("topk_pruned_docs").Value(); got == 0 {
		t.Fatal("bound never pruned on a corpus built to trigger pruning")
	}
	if got := reg.Counter("index_path_queries").Value(); got != 1 {
		t.Fatalf("index_path_queries = %d, want 1", got)
	}
}

// TestTopKPastEndAndBeyondPages: past-the-end pages agree between paths
// (nil Results, Total/NumPages preserved).
func TestTopKPastEndAndBeyondPages(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	for i := 0; i < 15; i++ {
		if _, err := c.Insert(pub(fmt.Sprintf("p%02d", i),
			fmt.Sprintf("Fever study %d", i), "abstract", "body")); err != nil {
			t.Fatal(err)
		}
	}
	a, b, _ := parityEngines(t, c)
	for _, page := range []int{1, 2, 3, 7} {
		pa, err := a.SearchAll("fever", page)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.SearchAll("fever", page)
		if err != nil {
			t.Fatal(err)
		}
		diffPages(t, fmt.Sprintf("page=%d", page), pa, pb)
	}
}
