package search

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Default query-cache bounds: page-1 queries repeat heavily in an
// interactive corpus browser, so a modest LRU absorbs most of the read
// load without risking memory blow-up on pathological result pages.
const (
	defaultCacheEntries = 1024
	defaultCacheBytes   = 64 << 20
)

// CacheStats is a point-in-time view of the query cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// cacheKey identifies one cached page: which engine answered, the
// canonicalized query (parsed terms, so "Masks  study" and "masks study"
// share an entry), and the page number.
type cacheKey struct {
	engine string
	query  string
	page   int
}

// cacheEntry is one LRU slot. gen is the engine generation the page was
// computed under; a mismatch with the current generation means an ingest
// or option change happened since and the entry is stale.
type cacheEntry struct {
	key   cacheKey
	page  Page
	gen   uint64
	bytes int64
}

// queryCache is a doubly-bounded (entries and bytes) LRU of computed
// result pages. Invalidation is generation-based: entries carry the
// engine generation they were computed under and are discarded on
// lookup when it no longer matches, so a single atomic counter bump
// invalidates the whole cache without sweeping it.
type queryCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recent; values are *cacheEntry
	items    map[cacheKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// newQueryCache builds a cache; maxItems ≤ 0 or maxBytes ≤ 0 disables
// caching entirely.
func newQueryCache(maxItems int, maxBytes int64) *queryCache {
	return &queryCache{
		maxItems: maxItems,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[cacheKey]*list.Element{},
	}
}

func (c *queryCache) enabled() bool { return c.maxItems > 0 && c.maxBytes > 0 }

// get returns the cached page for key if present and computed under the
// current generation. Stale entries are removed on sight.
func (c *queryCache) get(key cacheKey, gen uint64) (Page, bool) {
	if !c.enabled() {
		return Page{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return Page{}, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.removeLocked(el)
		c.mu.Unlock()
		c.misses.Add(1)
		return Page{}, false
	}
	c.ll.MoveToFront(el)
	pg := ent.page
	c.mu.Unlock()
	c.hits.Add(1)
	return pg, true
}

// put stores a computed page under the generation it was computed under
// (captured before the computation started, so a concurrent ingest
// invalidates it). Returns the number of entries evicted to make room.
// Pages larger than the whole byte budget are not cached.
func (c *queryCache) put(key cacheKey, pg Page, gen uint64) int64 {
	if !c.enabled() {
		return 0
	}
	size := pageBytes(pg)
	if size > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	ent := &cacheEntry{key: key, page: pg, gen: gen, bytes: size}
	c.items[key] = c.ll.PushFront(ent)
	c.curBytes += size
	var evicted int64
	for (len(c.items) > c.maxItems || c.curBytes > c.maxBytes) && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		evicted++
	}
	c.evictions.Add(evicted)
	return evicted
}

// removeLocked unlinks one entry; callers hold c.mu.
func (c *queryCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.curBytes -= ent.bytes
}

// stats snapshots the counters.
func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.curBytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// pageBytes estimates the retained size of a cached page: string bytes
// plus struct overhead. An estimate is enough — the bound exists to
// prevent runaway growth, not to account exactly.
func pageBytes(pg Page) int64 {
	size := int64(64)
	for _, r := range pg.Results {
		size += 96 + int64(len(r.DocID)+len(r.Title)+len(r.Journal))
		for _, a := range r.Authors {
			size += int64(len(a)) + 16
		}
		for _, sn := range r.Snippets {
			size += 48 + int64(len(sn.Field)+len(sn.Text)) + int64(16*len(sn.Highlights))
		}
	}
	return size
}
