package search

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Default query-cache bounds: page-1 queries repeat heavily in an
// interactive corpus browser, so a modest LRU absorbs most of the read
// load without risking memory blow-up on pathological result pages.
const (
	defaultCacheEntries = 1024
	defaultCacheBytes   = 64 << 20
)

// CacheStats is a point-in-time view of the query cache. StaleGen and
// StaleTerm break the misses down by invalidation cause: StaleGen
// counts entries dropped by a global generation bump (removal, option
// change), StaleTerm counts entries dropped because a write touched one
// of the entry's own scope terms — the per-segment/term-scoped
// invalidation a live ingest stream exercises. A cache that stays warm
// under a writer shows Hits climbing while StaleTerm stays proportional
// to writes that actually overlap the query mix.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	StaleGen  int64 `json:"stale_gen"`
	StaleTerm int64 `json:"stale_term"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// cacheKey identifies one cached page: which engine answered, the
// canonicalized query (parsed terms, so "Masks  study" and "masks study"
// share an entry), and the page number.
type cacheKey struct {
	engine string
	query  string
	page   int
}

// cacheScope is the invalidation fingerprint a page is cached under:
// the engine generation (global invalidation: removals, option
// changes), and either the per-term write generations of the query's
// index terms (scoped invalidation: the page goes stale only when one
// of its own terms is written) or, for queries whose term set the index
// cannot bound (a quoted phrase with no content words), the index's
// global write sequence.
type cacheScope struct {
	gen   uint64
	terms []string
	gens  []uint64
	// all marks an unbounded scope: validate against writeSeq instead
	// of per-term gens.
	all      bool
	writeSeq uint64
}

// staleness compares a stored scope against the current one: 0 fresh,
// 1 stale by generation, 2 stale by term write.
func (sc cacheScope) staleness(now cacheScope) int {
	if sc.gen != now.gen {
		return 1
	}
	if sc.all || now.all {
		if sc.all != now.all || sc.writeSeq != now.writeSeq {
			return 2
		}
		return 0
	}
	if len(sc.gens) != len(now.gens) {
		return 2
	}
	for i := range sc.gens {
		if sc.gens[i] != now.gens[i] {
			return 2
		}
	}
	return 0
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key   cacheKey
	page  Page
	scope cacheScope
	bytes int64
}

// queryCache is a doubly-bounded (entries and bytes) LRU of computed
// result pages. Invalidation is scope-based: entries carry the
// generation and per-term write fingerprints they were computed under
// and are discarded on lookup when the current fingerprint no longer
// matches — no sweep, and a write to term X never evicts pages for
// queries that do not involve X.
type queryCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recent; values are *cacheEntry
	items    map[cacheKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	staleGen  atomic.Int64
	staleTerm atomic.Int64
}

// newQueryCache builds a cache; maxItems ≤ 0 or maxBytes ≤ 0 disables
// caching entirely.
func newQueryCache(maxItems int, maxBytes int64) *queryCache {
	return &queryCache{
		maxItems: maxItems,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[cacheKey]*list.Element{},
	}
}

func (c *queryCache) enabled() bool { return c.maxItems > 0 && c.maxBytes > 0 }

// get returns the cached page for key if present and still fresh under
// the current scope fingerprint. Stale entries are removed on sight.
func (c *queryCache) get(key cacheKey, now cacheScope) (Page, bool) {
	if !c.enabled() {
		return Page{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return Page{}, false
	}
	ent := el.Value.(*cacheEntry)
	if st := ent.scope.staleness(now); st != 0 {
		c.removeLocked(el)
		c.mu.Unlock()
		c.misses.Add(1)
		if st == 1 {
			c.staleGen.Add(1)
		} else {
			c.staleTerm.Add(1)
		}
		return Page{}, false
	}
	c.ll.MoveToFront(el)
	pg := ent.page
	c.mu.Unlock()
	c.hits.Add(1)
	return pg, true
}

// put stores a computed page under the scope fingerprint captured
// before the computation started, so a concurrent write to one of the
// query's terms invalidates it. Returns the number of entries evicted
// to make room. Pages larger than the whole byte budget are not cached.
func (c *queryCache) put(key cacheKey, pg Page, scope cacheScope) int64 {
	if !c.enabled() {
		return 0
	}
	size := pageBytes(pg)
	if size > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	ent := &cacheEntry{key: key, page: pg, scope: scope, bytes: size}
	c.items[key] = c.ll.PushFront(ent)
	c.curBytes += size
	var evicted int64
	for (len(c.items) > c.maxItems || c.curBytes > c.maxBytes) && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		evicted++
	}
	c.evictions.Add(evicted)
	return evicted
}

// removeLocked unlinks one entry; callers hold c.mu.
func (c *queryCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.curBytes -= ent.bytes
}

// stats snapshots the counters.
func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.curBytes
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		StaleGen:  c.staleGen.Load(),
		StaleTerm: c.staleTerm.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// pageBytes estimates the retained size of a cached page: string bytes
// plus struct overhead. An estimate is enough — the bound exists to
// prevent runaway growth, not to account exactly.
func pageBytes(pg Page) int64 {
	size := int64(64)
	for _, r := range pg.Results {
		size += 96 + int64(len(r.DocID)+len(r.Title)+len(r.Journal))
		for _, a := range r.Authors {
			size += int64(len(a)) + 16
		}
		for _, sn := range r.Snippets {
			size += 48 + int64(len(sn.Field)+len(sn.Text)) + int64(16*len(sn.Highlights))
		}
	}
	return size
}
