package search

import (
	"strings"
	"testing"
	"unicode/utf8"

	"covidkg/internal/cord19"
	"covidkg/internal/docstore"
	"covidkg/internal/jsondoc"
	"covidkg/internal/textproc"
)

// pub builds a minimal publication document.
func pub(id, title, abstract, body string, tables ...jsondoc.Doc) jsondoc.Doc {
	ts := make([]any, len(tables))
	for i, t := range tables {
		ts[i] = map[string]any(t)
	}
	return jsondoc.Doc{
		"_id":          id,
		"title":        title,
		"abstract":     abstract,
		"body_text":    body,
		"authors":      []any{"A. Author", "B. Author"},
		"journal":      "Test Journal",
		"publish_date": "2021-06-01",
		"tables":       ts,
	}
}

func table(caption string, rows ...[]string) jsondoc.Doc {
	rs := make([]any, len(rows))
	for i, r := range rows {
		cells := make([]any, len(r))
		for j, c := range r {
			cells[j] = c
		}
		rs[i] = cells
	}
	return jsondoc.Doc{"caption": caption, "rows": rs}
}

func testEngine(t *testing.T) *Engine {
	t.Helper()
	s := docstore.Open()
	c := s.Collection("pubs")
	docs := []jsondoc.Doc{
		pub("p1",
			"Masks and transmission of SARS-CoV-2",
			"We analyze mask mandates. Masks reduce droplet transmission substantially.",
			"Long body text about masks, distancing and ventilation in hospitals."),
		pub("p2",
			"Vaccine side effects in healthcare workers",
			"Fever and fatigue were the most common side effects after vaccination.",
			"Body text about immunization outcomes.",
			table("Table 1: Side effects by vaccine and dose",
				[]string{"Vaccine", "Dose", "Fever %"},
				[]string{"Pfizer-BioNTech", "1", "8.5"},
				[]string{"Moderna", "2", "15.2"})),
		pub("p3",
			"Ventilator allocation during surge",
			"Intensive care units faced ventilator shortages.",
			"Discussion of ventilators and triage.",
			table("Table 2: Ventilators per region",
				[]string{"Region", "Ventilators"},
				[]string{"North", "120"},
				[]string{"South", "85"})),
	}
	for _, d := range docs {
		if _, err := c.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(c)
}

func TestSearchAllBasic(t *testing.T) {
	e := testEngine(t)
	page, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 {
		t.Fatalf("total = %d", page.Total)
	}
	if page.Results[0].DocID != "p1" {
		t.Fatalf("hit = %v", page.Results[0])
	}
	if len(page.Results[0].Snippets) == 0 {
		t.Fatal("no snippets")
	}
}

func TestSearchAllStemming(t *testing.T) {
	e := testEngine(t)
	// "vaccination" stems to vaccin, matching "vaccine"/"vaccination"
	page, err := e.SearchAll("vaccinations", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total < 1 {
		t.Fatal("stemming match failed")
	}
	found := false
	for _, r := range page.Results {
		if r.DocID == "p2" {
			found = true
		}
	}
	if !found {
		t.Fatal("p2 should match via stemming")
	}
}

func TestSearchAllExactQuoted(t *testing.T) {
	e := testEngine(t)
	page, err := e.SearchAll(`"droplet transmission"`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "p1" {
		t.Fatalf("quoted phrase: %+v", page)
	}
	// phrase in different order must not match
	page, err = e.SearchAll(`"transmission droplet"`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 {
		t.Fatalf("reversed phrase matched: %+v", page.Results)
	}
}

func TestSearchFieldsInclusive(t *testing.T) {
	e := testEngine(t)
	// title matches p1, abstract term only in p2 — inclusive semantics
	// require each queried field to match, so no document qualifies.
	page, err := e.SearchFields(FieldQuery{Title: "masks", Abstract: "fever"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 {
		t.Fatalf("inclusive semantics violated: %+v", page.Results)
	}
	// both conditions satisfied by p2
	page, err = e.SearchFields(FieldQuery{Title: "vaccine", Abstract: "fever"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "p2" {
		t.Fatalf("got %+v", page.Results)
	}
}

func TestSearchFieldsCaption(t *testing.T) {
	e := testEngine(t)
	page, err := e.SearchFields(FieldQuery{Caption: "side effects"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "p2" {
		t.Fatalf("caption search: %+v", page.Results)
	}
	// caption snippets come first in the §2.1.1 result format
	if len(page.Results[0].Snippets) == 0 || page.Results[0].Snippets[0].Field != FieldTableCaption {
		t.Fatalf("snippet order: %+v", page.Results[0].Snippets)
	}
}

func TestSearchFieldsEmpty(t *testing.T) {
	e := testEngine(t)
	if _, err := e.SearchFields(FieldQuery{}, 1); err == nil {
		t.Fatal("empty field query should error")
	}
}

func TestSearchTablesMatchesCellsAndCaption(t *testing.T) {
	e := testEngine(t)
	page, err := e.SearchTables("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "p3" {
		t.Fatalf("table search: %+v", page.Results)
	}
	// cell-only term
	page, err = e.SearchTables("Moderna", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "p2" {
		t.Fatalf("cell match: %+v", page.Results)
	}
	// body-only term must NOT hit the table engine
	page, err = e.SearchTables("distancing", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 {
		t.Fatalf("body term leaked into table search: %+v", page.Results)
	}
}

func TestMatchingTables(t *testing.T) {
	e := testEngine(t)
	tabs, err := e.MatchingTables("p2", "fever")
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	if !strings.Contains(tabs[0].GetString("caption"), "Side effects") {
		t.Fatalf("caption = %q", tabs[0].GetString("caption"))
	}
	tabs, err = e.MatchingTables("p2", "zebra")
	if err != nil || len(tabs) != 0 {
		t.Fatalf("no-match: %v %v", tabs, err)
	}
}

func TestRankingTitleBeatsBody(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("title-hit", "Masks work", "Nothing here.", "Nothing here either."))
	c.Insert(pub("body-hit", "Unrelated title", "Nothing.", "A mention of masks deep in the body."))
	e := NewEngine(c)
	page, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 {
		t.Fatalf("total = %d", page.Total)
	}
	if page.Results[0].DocID != "title-hit" {
		t.Fatalf("title match should rank first: %+v", page.Results)
	}
	if page.Results[0].Score <= page.Results[1].Score {
		t.Fatal("scores not ordered")
	}
}

func TestRankingProximity(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("near", "t", "masks reduce transmission quickly", ""))
	c.Insert(pub("far", "t", "masks were distributed. later we measured cough and fever and finally transmission", ""))
	e := NewEngine(c)
	page, err := e.SearchAll("masks transmission", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Results[0].DocID != "near" {
		t.Fatalf("proximity should favor 'near': %+v", page.Results)
	}
}

func TestRankingCoverage(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("both", "t", "masks and ventilators", ""))
	c.Insert(pub("one", "t", "masks masks masks masks masks masks", ""))
	e := NewEngine(c)
	page, err := e.SearchAll("masks ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Results[0].DocID != "both" {
		t.Fatalf("coverage should favor matching all terms: %+v", page.Results)
	}
}

func TestPagination(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	for i := 0; i < 23; i++ {
		c.Insert(pub(
			"p"+strings.Repeat("0", 3-len(itoa(i)))+itoa(i),
			"Masks study "+itoa(i), "About masks.", ""))
	}
	e := NewEngine(c)
	p1, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Total != 23 || p1.NumPages != 3 || len(p1.Results) != 10 {
		t.Fatalf("page1 = %+v", p1)
	}
	p3, _ := e.SearchAll("masks", 3)
	if len(p3.Results) != 3 {
		t.Fatalf("page3 = %d results", len(p3.Results))
	}
	p9, _ := e.SearchAll("masks", 9)
	if len(p9.Results) != 0 {
		t.Fatalf("past-end page = %d results", len(p9.Results))
	}
	// no overlap between pages
	seen := map[string]bool{}
	for _, pg := range []Page{p1, p3} {
		for _, r := range pg.Results {
			if seen[r.DocID] {
				t.Fatalf("doc %s on two pages", r.DocID)
			}
			seen[r.DocID] = true
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestSnippetHighlights(t *testing.T) {
	e := testEngine(t)
	page, err := e.SearchAll("masks", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range page.Results[0].Snippets {
		if len(sn.Highlights) == 0 {
			t.Fatalf("snippet without highlights: %+v", sn)
		}
		for _, h := range sn.Highlights {
			frag := strings.ToLower(sn.Text[h[0]:h[1]])
			if !strings.HasPrefix(frag, "mask") {
				t.Fatalf("highlight %q is not a match", frag)
			}
		}
		marked := sn.HighlightMarked()
		if !strings.Contains(marked, "[[") {
			t.Fatalf("HighlightMarked lost markers: %q", marked)
		}
	}
}

func TestAddRemoveDocument(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	e := NewEngine(c)
	id, err := e.AddDocument(pub("", "Remdesivir trial", "Antiviral treatment outcomes.", ""))
	if err != nil {
		t.Fatal(err)
	}
	page, _ := e.SearchAll("remdesivir", 1)
	if page.Total != 1 {
		t.Fatal("added doc not searchable")
	}
	if err := e.RemoveDocument(id); err != nil {
		t.Fatal(err)
	}
	page, _ = e.SearchAll("remdesivir", 1)
	if page.Total != 0 {
		t.Fatal("removed doc still searchable")
	}
}

func TestEmptyQueryErrors(t *testing.T) {
	e := testEngine(t)
	for _, q := range []string{"", "the of and", `""`} {
		if _, err := e.SearchAll(q, 1); err == nil {
			t.Errorf("query %q should error", q)
		}
		if _, err := e.SearchTables(q, 1); err == nil {
			t.Errorf("table query %q should error", q)
		}
	}
}

func TestSearchOverGeneratedCorpus(t *testing.T) {
	s := docstore.Open(docstore.WithShards(4))
	c := s.Collection("pubs")
	g := cord19.NewGenerator(99)
	for _, p := range g.Corpus(200) {
		if _, err := c.Insert(p.Doc()); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(c)
	// the paper's demo queries
	for _, q := range []string{"masks", "ventilators", "vaccine"} {
		page, err := e.SearchAll(q, 1)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if page.Total == 0 {
			t.Fatalf("query %q found nothing in 200 generated pubs", q)
		}
		// scores must be non-increasing
		for i := 1; i < len(page.Results); i++ {
			if page.Results[i].Score > page.Results[i-1].Score {
				t.Fatalf("ranking not sorted for %q", q)
			}
		}
	}
}

func TestScoreDocExplainConsistent(t *testing.T) {
	e := testEngine(t)
	d, err := e.coll.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	terms := textproc.ParseQuery("masks transmission")
	ex := e.scoreDoc(d, terms, nil)
	sum := ex.TFIDF + ex.Matches + ex.Proximity + ex.Coverage + ex.Recency
	if diff := ex.Total - sum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("explain does not sum: %+v", ex)
	}
	if ex.Total <= 0 {
		t.Fatalf("score = %v", ex.Total)
	}
}

func TestSynonymRecallAndDiscount(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("direct", "t", "Ventilator allocation in intensive care.", ""))
	c.Insert(pub("synonym", "t", "Respirator allocation in intensive care.", ""))
	c.Insert(pub("neither", "t", "Oxygen therapy outcomes.", ""))
	e := NewEngine(c)
	page, err := e.SearchAll("ventilators", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 {
		t.Fatalf("synonym recall: %d hits (%+v)", page.Total, page.Results)
	}
	// the literal match must outrank the synonym match
	if page.Results[0].DocID != "direct" {
		t.Fatalf("ranking: %+v", page.Results)
	}
	if page.Results[1].DocID != "synonym" {
		t.Fatalf("synonym doc missing: %+v", page.Results)
	}
	if page.Results[1].Score <= 0 {
		t.Fatal("synonym match scored zero")
	}
}

func TestSynonymVaccineImmunization(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("imm", "Immunization outcomes", "Mass immunization programmes.", ""))
	e := NewEngine(c)
	page, err := e.SearchAll("vaccine", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 {
		t.Fatalf("vaccine→immunization synonym failed: %+v", page)
	}
}

// TestPhraseTermSynonymRecall is the regression test for the verify
// predicate: when a quoted phrase forces candidate re-verification, a
// document that matches a bare term only through the synonym table
// (vaccine → immunization) must stay in the result set.
func TestPhraseTermSynonymRecall(t *testing.T) {
	s := docstore.Open()
	c := s.Collection("pubs")
	c.Insert(pub("syn",
		"Immunization outcomes",
		"Mass immunization programmes and the spike protein response.", ""))
	c.Insert(pub("lit",
		"Vaccine efficacy",
		"The vaccine targets the spike protein.", ""))
	e := NewEngine(c)

	page, err := e.SearchAll(`vaccine "spike protein"`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 2 {
		t.Fatalf("phrase+term dropped synonym match: %d hits (%+v)", page.Total, page.Results)
	}

	// the field engine applies the predicate per field: a synonym-only
	// title must satisfy its condition when the abstract carries a phrase
	page, err = e.SearchFields(FieldQuery{Title: "vaccine", Abstract: `"spike protein"`}, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, r := range page.Results {
		found[r.DocID] = true
	}
	if !found["syn"] || !found["lit"] {
		t.Fatalf("field engine lost synonym recall: %+v", page.Results)
	}

	// NoSynonyms restores literal-only verification
	e.SetRankOptions(RankOptions{NoSynonyms: true})
	page, err = e.SearchFields(FieldQuery{Title: "vaccine", Abstract: `"spike protein"`}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || page.Results[0].DocID != "lit" {
		t.Fatalf("NoSynonyms not honored by verify predicate: %+v", page.Results)
	}
}

// TestSnippetUTF8 pins the rune-boundary alignment of snippet windows:
// when the context radius lands mid-rune inside Greek or CJK text, the
// excerpt must stay valid UTF-8 and close to the configured radius (the
// old ASCII-only boundary check walked past entire non-Latin runs).
func TestSnippetUTF8(t *testing.T) {
	terms := textproc.ParseQuery("masks")
	text := strings.Repeat("α", 100) + " masks " + strings.Repeat("汉", 50)
	sn, ok := makeSnippet(FieldAbstract, text, terms)
	if !ok {
		t.Fatal("no snippet")
	}
	if !utf8.ValidString(sn.Text) {
		t.Fatalf("snippet is not valid UTF-8: %q", sn.Text)
	}
	// window stays near 2·radius — a few bytes of slack for rune alignment
	// and the ellipses, not hundreds for a run of non-ASCII text
	if max := 2*snippetRadius + len("masks") + 16; len(sn.Text) > max {
		t.Fatalf("snippet ballooned to %d bytes (max %d): %q", len(sn.Text), max, sn.Text)
	}
	if len(sn.Highlights) == 0 {
		t.Fatal("no highlights")
	}
	for _, h := range sn.Highlights {
		if got := sn.Text[h[0]:h[1]]; got != "masks" {
			t.Fatalf("highlight = %q", got)
		}
	}

	// match at the very start of CJK-only text: both edges must align
	text2 := "masks " + strings.Repeat("病", 80)
	sn2, ok := makeSnippet(FieldAbstract, text2, terms)
	if !ok {
		t.Fatal("no snippet for cjk text")
	}
	if !utf8.ValidString(sn2.Text) {
		t.Fatalf("cjk snippet invalid: %q", sn2.Text)
	}
}

// TestPaginateNumPagesAtLeastOne: an empty result set is one empty page,
// never zero pages — UIs divide by NumPages.
func TestPaginateNumPagesAtLeastOne(t *testing.T) {
	pg := paginate(nil, 1)
	if pg.NumPages != 1 || pg.Total != 0 || pg.PageNum != 1 {
		t.Fatalf("empty paginate = %+v", pg)
	}
	e := testEngine(t)
	page, err := e.SearchAll("xylophone", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 0 || page.NumPages != 1 {
		t.Fatalf("zero-hit page = %+v", page)
	}
	// page 0 and page 1 are the same request (and the same cache entry)
	p0, err := e.SearchAll("masks", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p0.PageNum != 1 {
		t.Fatalf("page 0 not clamped: %+v", p0)
	}
}

func TestTableCellMatches(t *testing.T) {
	e := testEngine(t)
	ms, err := e.TableCellMatches("p2", "fever")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("matches = %+v", ms)
	}
	m := ms[0]
	if m.CaptionMatched {
		t.Fatal("caption should not match 'fever'... it doesn't contain it")
	}
	// "Fever %" is the header cell at (0, 2)
	found := false
	for _, c := range m.Cells {
		if c == [2]int{0, 2} {
			found = true
		}
	}
	if !found {
		t.Fatalf("cells = %v", m.Cells)
	}
	// caption match
	ms, err = e.TableCellMatches("p3", "regions")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || !ms[0].CaptionMatched {
		t.Fatalf("caption match: %+v", ms)
	}
	// no match
	ms, err = e.TableCellMatches("p2", "zebra")
	if err != nil || len(ms) != 0 {
		t.Fatalf("no-match: %+v %v", ms, err)
	}
	// missing doc
	if _, err := e.TableCellMatches("nope", "fever"); err == nil {
		t.Fatal("missing doc should error")
	}
	// empty query
	if _, err := e.TableCellMatches("p2", ""); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestConcurrentSearchAndIngest(t *testing.T) {
	s := docstore.Open(docstore.WithShards(4))
	c := s.Collection("pubs")
	e := NewEngine(c)
	for i := 0; i < 50; i++ {
		if _, err := e.AddDocument(pub("", "masks study", "about masks and vaccines", "")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := e.AddDocument(pub("", "vaccines trial", "vaccination outcomes", "")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := e.SearchAll("masks", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SearchTables("vaccine", 1); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	page, err := e.SearchAll("vaccines", 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total < 50 {
		t.Fatalf("total = %d", page.Total)
	}
}
