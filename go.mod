module covidkg

go 1.22
