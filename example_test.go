package covidkg_test

import (
	"fmt"

	"covidkg"
)

// ExampleSystem shows the end-to-end path: ingest a corpus, train the
// models, build the knowledge graph, and search.
func ExampleSystem() {
	cfg := covidkg.DefaultConfig()
	cfg.TrainTables = 40
	cfg.W2V.Epochs = 2
	sys := covidkg.New(cfg)

	if err := sys.Ingest(covidkg.GenerateCorpus(50, 7)); err != nil {
		panic(err)
	}
	if _, err := sys.Train(); err != nil {
		panic(err)
	}
	sys.BuildGraph()

	fmt.Println("publications:", sys.PublicationCount())
	fmt.Println("root:", sys.GraphRoot().Label)
	// Output:
	// publications: 50
	// root: COVID-19
}

// ExampleSystem_Fuse demonstrates the §4.2 fusion rules: a term-matched
// depth-2 subtree fuses unsupervised, a multi-layer subtree queues for
// the expert.
func ExampleSystem_Fuse() {
	sys := covidkg.New(covidkg.DefaultConfig())

	flat := covidkg.NewSubtree("Vaccines", "ExampleVax")
	fmt.Println(sys.Fuse(flat).Action)

	deep := &covidkg.Subtree{Label: "Side effects", Children: []*covidkg.Subtree{
		{Label: "Rare side effects", Children: []*covidkg.Subtree{{Label: "Myocarditis"}}},
	}}
	fmt.Println(sys.Fuse(deep).Action)
	// Output:
	// fused
	// queued
}

// ExampleSystem_GraphSearch shows KG search with path highlighting.
func ExampleSystem_GraphSearch() {
	sys := covidkg.New(covidkg.DefaultConfig())
	sys.Fuse(covidkg.NewSubtree("Vaccines", "DemoVax"))
	for _, hit := range sys.GraphSearch("DemoVax") {
		for i, n := range hit.Path {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(n.Label)
		}
		fmt.Println()
	}
	// Output:
	// COVID-19 -> Vaccines -> DemoVax
}
