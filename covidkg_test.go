package covidkg

import (
	"strings"
	"testing"
)

// buildSystem exercises the full public API path once per test binary.
func buildSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrainTables = 50
	cfg.W2V.Epochs = 2
	cfg.VocabSize = 1500
	sys := New(cfg)
	pubs := GenerateCorpus(60, 42)
	pubs = append(pubs, GenerateSideEffectPapers(3, 43,
		[]string{"Pfizer-BioNTech", "Moderna"})...)
	if err := sys.Ingest(pubs); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Train(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := buildSystem(t)
	if sys.PublicationCount() != 63 {
		t.Fatalf("count = %d", sys.PublicationCount())
	}

	// search engines
	page, err := sys.SearchAll("vaccine", 1)
	if err != nil || page.Total == 0 {
		t.Fatalf("SearchAll: %v / %+v", err, page)
	}
	if _, err := sys.SearchFields(FieldQuery{Title: "vaccine"}, 1); err != nil {
		t.Fatal(err)
	}
	tp, err := sys.SearchTables("side effect", 1)
	if err != nil || tp.Total == 0 {
		t.Fatalf("SearchTables: %v / %+v", err, tp)
	}

	// graph build and search
	st := sys.BuildGraph()
	if st.Subtrees == 0 {
		t.Fatalf("build stats = %+v", st)
	}
	hits := sys.GraphSearch("vaccines")
	if len(hits) == 0 {
		t.Fatal("graph search empty")
	}
	if sys.GraphRoot().Label != "COVID-19" {
		t.Fatalf("root = %q", sys.GraphRoot().Label)
	}
	kids, err := sys.GraphChildren(sys.GraphRoot().ID)
	if err != nil || len(kids) == 0 {
		t.Fatalf("children: %v / %d", err, len(kids))
	}
	if sys.GraphSize() < 15 {
		t.Fatalf("graph size = %d", sys.GraphSize())
	}
	data, err := sys.GraphJSON()
	if err != nil || len(data) == 0 {
		t.Fatalf("GraphJSON: %v", err)
	}

	// meta-profile over the side-effect papers
	p := sys.MetaProfile("Vaccine side-effects")
	if len(p.Sources()) < 3 {
		t.Fatalf("profile sources = %v", p.Sources())
	}
	if !strings.Contains(p.Render(), "Pfizer-BioNTech") {
		t.Fatal("profile missing vaccine")
	}

	// model release API
	models, err := sys.ExportModels()
	if err != nil || len(models) < 3 {
		t.Fatalf("ExportModels: %v / %d", err, len(models))
	}
}

func TestPublicReviewWorkflow(t *testing.T) {
	sys := buildSystem(t)
	res := sys.Fuse(&Subtree{
		Label: "Long COVID",
		Children: []*Subtree{
			{Label: "Persistent symptoms", Children: []*Subtree{{Label: "Brain fog"}}},
		},
	})
	if res.Action != "queued" {
		t.Fatalf("multi-layer fusion = %+v", res)
	}
	pend := sys.PendingReviews()
	if len(pend) == 0 {
		t.Fatal("no pending reviews")
	}
	if err := sys.ApproveReview(res.ReviewID, sys.GraphRoot().ID); err != nil {
		t.Fatal(err)
	}
	if len(sys.GraphSearch("brain fog")) != 1 {
		t.Fatal("approved subtree not in graph")
	}
	// corrections learned: same root now fuses unsupervised
	res2 := sys.Fuse(&Subtree{Label: "Long COVID", Children: []*Subtree{{Label: "Fatigue"}}})
	if res2.Action != "fused" {
		t.Fatalf("learned fusion = %+v", res2)
	}
	// reject path
	res3 := sys.Fuse(&Subtree{Label: "Noise zz", Children: []*Subtree{
		{Label: "x", Children: []*Subtree{{Label: "y"}}},
	}})
	if err := sys.RejectReview(res3.ReviewID); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(5, 9)
	b := GenerateCorpus(5, 9)
	for i := range a {
		if a[i].Title != b[i].Title {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestTopicClustersPublic(t *testing.T) {
	sys := buildSystem(t)
	res, ids, truths, err := sys.TopicClusters(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(ids) || len(ids) != len(truths) {
		t.Fatal("misaligned clustering outputs")
	}
}
