// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table/figure-level claim (see DESIGN.md §4), printing
// paper-claim vs measured tables.
//
// Usage:
//
//	benchrunner               # run everything at full size
//	benchrunner -quick        # reduced sizes (~seconds per experiment)
//	benchrunner -exp e1,e3    # selected experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"covidkg/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e10) or 'all'")
	flag.Parse()

	ids := experiments.IDs()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := experiments.Registry[id]; !ok {
				log.Fatalf("unknown experiment %q (have %v)", id, experiments.IDs())
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep := experiments.Registry[id](*quick)
		fmt.Println(rep.Format())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}
