// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table/figure-level claim (see DESIGN.md §4), printing
// paper-claim vs measured tables.
//
// Usage:
//
//	benchrunner               # run everything at full size
//	benchrunner -quick        # reduced sizes (~seconds per experiment)
//	benchrunner -exp e1,e3    # selected experiments
//	benchrunner -searchbench BENCH_search.json
//	                          # search throughput/cache benchmark only,
//	                          # JSON result written to the given file
//	benchrunner -loadbench BENCH_load.json
//	                          # request-lifecycle overload benchmark:
//	                          # shed/cancel/deadline counts under load
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"covidkg/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e10) or 'all'")
	searchBench := flag.String("searchbench", "", "run the search concurrency/cache benchmark and write JSON to this file")
	loadBench := flag.String("loadbench", "", "run the request-lifecycle overload benchmark and write JSON to this file")
	flag.Parse()

	if *loadBench != "" {
		res := experiments.RunLoadBench(*quick)
		writeJSONFile(*loadBench, res)
		fmt.Printf("load bench over %d docs (%d clients, in-flight cap %d):\n",
			res.Docs, res.Concurrency, res.InflightCap)
		fmt.Printf("  %d requests: %d ok, %d shed (429), %d deadline (504), %d client aborts\n",
			res.Requests, res.OK, res.Shed, res.DeadlineClient, res.CancelledClient)
		fmt.Printf("  server counters: requests_shed=%d requests_cancelled=%d deadline_exceeded=%d\n",
			res.RequestsShed, res.RequestsCancelled, res.DeadlineExceeded)
		fmt.Printf("written to %s\n", *loadBench)
		return
	}

	if *searchBench != "" {
		res := experiments.RunSearchBench(*quick)
		writeJSONFile(*searchBench, res)
		fmt.Printf("search bench over %d docs (%d cores, %d workers):\n", res.Docs, res.Cores, res.Workers)
		fmt.Printf("  serial %.1f qps, parallel %.1f qps (%.2fx)\n", res.SerialQPS, res.ParallelQPS, res.Speedup)
		fmt.Printf("  page-1 cold %.0fµs, warm %.0fµs (%.0fx)\n", res.ColdPage1Us, res.WarmPage1Us, res.CacheGain)
		fmt.Printf("written to %s\n", *searchBench)
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := experiments.Registry[id]; !ok {
				log.Fatalf("unknown experiment %q (have %v)", id, experiments.IDs())
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep := experiments.Registry[id](*quick)
		fmt.Println(rep.Format())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}

// writeJSONFile marshals v with an indent and writes it, fatally on any
// error — benchmark output is the whole point of the run.
func writeJSONFile(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
}
