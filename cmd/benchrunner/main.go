// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table/figure-level claim (see DESIGN.md §4), printing
// paper-claim vs measured tables.
//
// Usage:
//
//	benchrunner               # run everything at full size
//	benchrunner -quick        # reduced sizes (~seconds per experiment)
//	benchrunner -exp e1,e3    # selected experiments
//	benchrunner -searchbench BENCH_search.json
//	                          # search throughput/cache benchmark only,
//	                          # JSON result written to the given file
//	benchrunner -loadbench BENCH_load.json
//	                          # request-lifecycle overload benchmark:
//	                          # shed/cancel/deadline counts under load
//	benchrunner -chaosbench BENCH_chaos.json
//	                          # chaos schedules, in-process AND process-
//	                          # level (real shard server child processes
//	                          # SIGKILLed mid-write, restarted, migrated):
//	                          # availability, outage p99, lost-write audit
//	benchrunner -soakbench BENCH_soak.json
//	                          # multi-tenant session replay under chaos +
//	                          # live ingest; exits non-zero on SLO breach
//	benchrunner -kgbench BENCH_kg.json
//	                          # KG path-query engine: planned vs naive
//	                          # latency, divergence audit, cancellation
//	                          # responsiveness; exits non-zero on breach
//	benchrunner -wirebench BENCH_wire.json
//	                          # shard-tier wire fast path: binary codec vs
//	                          # JSON micro-bench plus end-to-end latency
//	                          # and allocs/op over live shard servers;
//	                          # exits non-zero if the binary path loses
//	                          # its codec or allocation advantage
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"covidkg/internal/experiments"
	"covidkg/internal/shardnet"
)

func main() {
	// The process chaos bench re-execs this binary as shard servers;
	// child mode must be detected before anything else runs.
	shardnet.MaybeRunChild()

	quick := flag.Bool("quick", false, "run reduced-size experiments")
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e10) or 'all'")
	searchBench := flag.String("searchbench", "", "run the search concurrency/cache benchmark and write JSON to this file")
	loadBench := flag.String("loadbench", "", "run the request-lifecycle overload benchmark and write JSON to this file")
	chaosBench := flag.String("chaosbench", "", "run the shard kill/recover chaos benchmark and write JSON to this file")
	soakBench := flag.String("soakbench", "", "run the multi-tenant soak benchmark and write JSON to this file; exits non-zero on SLO breach")
	kgBench := flag.String("kgbench", "", "run the KG path-query benchmark and write JSON to this file; exits non-zero on divergence or cancellation-budget breach")
	wireBench := flag.String("wirebench", "", "run the wire codec/transport benchmark and write JSON to this file; exits non-zero when the binary fast path loses its advantage")
	flag.Parse()

	if *wireBench != "" {
		res := experiments.RunWireBench(*quick)
		writeJSONFile(*wireBench, res)
		fmt.Printf("wire bench over %d docs on %d shards (batch %d):\n", res.Docs, res.Shards, res.BatchSize)
		for _, c := range res.Codec {
			fmt.Printf("  codec %-8s %-4s enc p50 %.1fµs  dec p50 %.1fµs  round p50 %.1fµs  (%dB req, %dB resp)\n",
				c.Op, c.Codec, c.P50EncodeUs, c.P50DecodeUs, c.P50RoundUs, c.ReqBytes, c.RespBytes)
		}
		fmt.Printf("  codec round-trip speedup: get %.1fx, get_many %.1fx\n",
			res.CodecSpeedupGet, res.CodecSpeedupGetMany)
		fmt.Printf("  transport alloc reduction (encode+frame): get %.0fx, get_many %.0fx\n",
			res.TransportAllocReductionGet, res.TransportAllocReductionGetMany)
		for _, p := range []experiments.WirePathStats{res.JSON, res.Binary} {
			fmt.Printf("  path %-4s get p50 %.0fµs (%.0f allocs)  get_many p50 %.0fµs (%.0f allocs)\n",
				p.Codec, p.GetP50Us, p.GetAllocsPerOp, p.GetManyP50Us, p.GetManyAllocsPerOp)
		}
		fmt.Printf("  end-to-end: get %.2fx faster / %.1fx fewer allocs, get_many %.2fx faster / %.1fx fewer allocs\n",
			res.PathSpeedupGet, res.AllocReductionGet, res.PathSpeedupGetMany, res.AllocReductionGetMany)
		// Self-failing gates. The codec must beat JSON by ≥2x on the
		// round-trip p50 of both fast-path envelope shapes, and the
		// pooled encode+frame machinery must cut its per-op allocations
		// ≥5x (payload materialization — building the decoded documents —
		// costs the same under any codec, so it is reported in the path
		// numbers but gated only as a must-not-lose canary). End-to-end
		// latency is also gated as must-not-lose: localhost RTT, not
		// codec work, can dominate a single get on a quiet machine.
		if res.CodecSpeedupGet < 2 {
			log.Fatalf("wire bench: binary codec only %.2fx faster than JSON on get round-trip (need ≥2x)", res.CodecSpeedupGet)
		}
		if res.CodecSpeedupGetMany < 2 {
			log.Fatalf("wire bench: binary codec only %.2fx faster than JSON on get_many round-trip (need ≥2x)", res.CodecSpeedupGetMany)
		}
		if res.TransportAllocReductionGet < 5 {
			log.Fatalf("wire bench: get transport allocs only reduced %.1fx (need ≥5x)", res.TransportAllocReductionGet)
		}
		if res.TransportAllocReductionGetMany < 5 {
			log.Fatalf("wire bench: get_many transport allocs only reduced %.1fx (need ≥5x)", res.TransportAllocReductionGetMany)
		}
		if res.AllocReductionGetMany < 1.1 {
			log.Fatalf("wire bench: whole-path get_many allocs not reduced (%.2fx)", res.AllocReductionGetMany)
		}
		if res.PathSpeedupGetMany < 1.0 {
			log.Fatalf("wire bench: binary get_many p50 slower than JSON (%.2fx)", res.PathSpeedupGetMany)
		}
		if !res.NegotiatedBinaryGetMany {
			log.Fatal("wire bench: binary path returned no documents (negotiation broken?)")
		}
		fmt.Printf("written to %s\n", *wireBench)
		return
	}

	if *kgBench != "" {
		res := experiments.RunKGBench(*quick)
		writeJSONFile(*kgBench, res)
		fmt.Printf("kg query bench over %d nodes (seed %d, %d iters/query):\n",
			res.Nodes, res.Seed, res.Iters)
		for _, qs := range res.Queries {
			fmt.Printf("  %-44s entry=%-10s rev=%-5v paths=%-5d planned p50 %.0fµs p99 %.0fµs | naive p50 %.0fµs (%.1fx)\n",
				qs.Query, qs.Entry, qs.Reversed, qs.Paths,
				qs.PlannedP50Us, qs.PlannedP99Us, qs.NaiveP50Us, qs.Speedup)
		}
		fmt.Printf("  divergent queries: %d (must be 0)\n", res.DivergentQueries)
		fmt.Printf("  cancellation: p50 %.0fµs p99 %.0fµs over %d samples (budget %.0fµs, yield interval %.0fµs / %d expansions)\n",
			res.Cancel.P50Us, res.Cancel.P99Us, res.Cancel.Samples,
			res.Cancel.BudgetUs, res.Cancel.YieldIntervalUs, res.Cancel.YieldEvery)
		fmt.Printf("written to %s\n", *kgBench)
		if !res.Pass {
			log.Fatalf("kg bench gate breach:\n  - %s", strings.Join(res.Breaches, "\n  - "))
		}
		fmt.Println("all gates met")
		return
	}

	if *soakBench != "" {
		res := experiments.RunSoakBench(*quick)
		writeJSONFile(*soakBench, res)
		fmt.Printf("soak bench over %d docs (%d shards × %d replicas, seed %d), %.0fms wall:\n",
			res.Docs, res.Shards, res.Replicas, res.Seed, res.DurationMs)
		fmt.Printf("  %d requests across %d sessions: %d ok, %d rate-limited, %d quota-denied, %d shed, %d failed\n",
			res.Requests, res.Sessions, res.OK, res.RateLimited, res.QuotaDenied, res.Shed, res.Failed)
		fmt.Printf("  availability %.3f%% (SLO ≥ %.1f%%)\n", res.AvailabilityPct, res.SLOs.AvailabilityPct)
		for _, cs := range res.Classes {
			fmt.Printf("  %-6s p50 %.1fms  p99 %.1fms  (budget %.0fms, %d requests)\n",
				cs.Class, cs.P50Us/1000, cs.P99Us/1000, cs.BudgetMs, cs.Requests)
		}
		for _, ts := range res.Tenants {
			fmt.Printf("  tenant %-7s [%-8s] %d req → %d ok, %d quota-denied, served=%d/%s\n",
				ts.ID, ts.Priority, ts.Requests, ts.OK, ts.QuotaDenied,
				ts.ServedCounter, quotaStr(ts.Quota))
		}
		fmt.Printf("  chaos: %d replica kills; ingest: %d acked, %d rejected, %d lost, %d ghost; inversions=%d\n",
			res.ReplicaKills, res.IngestAcked, res.IngestRejected, res.LostWrites, res.GhostWrites,
			res.AdmissionInversions)
		fmt.Printf("written to %s\n", *soakBench)
		if !res.Pass {
			log.Fatalf("soak SLO breach:\n  - %s", strings.Join(res.Breaches, "\n  - "))
		}
		fmt.Println("all SLOs met")
		return
	}

	if *chaosBench != "" {
		combined := experiments.ChaosBenchCombined{
			InProcess: experiments.RunChaosBench(*quick),
			Process:   experiments.RunProcChaosBench(*quick),
		}
		writeJSONFile(*chaosBench, combined)

		res := combined.InProcess
		fmt.Printf("in-process chaos bench over %d docs (%d shards × %d replicas, seed %d):\n",
			res.Docs, res.Shards, res.Replicas, res.Seed)
		fmt.Printf("  %d queries: %d ok, %d failed → %.2f%% availability (%d partial during outage)\n",
			res.Queries, res.OK, res.Failed, res.AvailabilityPct, res.PartialResponses)
		fmt.Printf("  p99 healthy %.0fµs, p99 one-shard-dark %.0fµs\n", res.P99HealthyUs, res.P99OutageUs)
		fmt.Printf("  writes: %d attempted, %d acked, %d rejected, %d lost, %d resurrected\n",
			res.WritesAttempted, res.WritesAcked, res.WritesRejected, res.LostWrites, res.GhostWrites)
		fmt.Printf("  resync %.1fms, checksums identical: %v (breaker_open=%d hedged=%d resyncs=%d)\n",
			res.ResyncMs, res.ChecksumsIdentical, res.BreakerOpened, res.HedgedRequests, res.ReplicaResyncs)

		proc := combined.Process
		fmt.Printf("process chaos bench over %d docs (%d shard processes × %d replicas, seed %d):\n",
			proc.Docs, proc.Shards, proc.Replicas, proc.Seed)
		fmt.Printf("  %d queries: %d ok, %d failed → %.3f%% availability (%d partial while shard %d dark)\n",
			proc.Queries, proc.OK, proc.Failed, proc.AvailabilityPct, proc.PartialResponses, proc.KilledShard)
		fmt.Printf("  p99 healthy %.0fµs, p99 process-dark %.0fµs\n", proc.P99HealthyUs, proc.P99OutageUs)
		fmt.Printf("  writes: %d attempted, %d acked, %d rejected, %d indeterminate, %d lost, %d ghost\n",
			proc.WritesAttempted, proc.WritesAcked, proc.WritesRejected,
			proc.WritesIndeterminate, proc.LostWrites, proc.GhostWrites)
		fmt.Printf("  SIGKILL→serving %.1fms (WAL replayed %d docs); migration identical=%v (%d bulk, %d delta, paused %.1fms) with %d live writes\n",
			proc.RestartMs, proc.WALReplayDocs, proc.Migration.Identical,
			proc.Migration.BulkDocs, proc.Migration.DeltaPuts, proc.Migration.PausedMs,
			proc.MigrationLiveWrites)

		if res.LostWrites > 0 || res.GhostWrites > 0 || !res.ChecksumsIdentical {
			log.Fatalf("in-process chaos invariant violated: lost=%d ghosts=%d identical=%v",
				res.LostWrites, res.GhostWrites, res.ChecksumsIdentical)
		}
		if !proc.Pass {
			log.Fatalf("process chaos gate breach:\n  - %s", strings.Join(proc.Breaches, "\n  - "))
		}
		fmt.Printf("written to %s\n", *chaosBench)
		fmt.Println("all chaos gates met")
		return
	}

	if *loadBench != "" {
		res := experiments.RunLoadBench(*quick)
		writeJSONFile(*loadBench, res)
		fmt.Printf("load bench over %d docs (%d clients, in-flight cap %d):\n",
			res.Docs, res.Concurrency, res.InflightCap)
		fmt.Printf("  %d requests: %d ok, %d shed (429), %d deadline (504), %d client aborts\n",
			res.Requests, res.OK, res.Shed, res.DeadlineClient, res.CancelledClient)
		fmt.Printf("  server counters: requests_shed=%d requests_cancelled=%d deadline_exceeded=%d\n",
			res.RequestsShed, res.RequestsCancelled, res.DeadlineExceeded)
		fmt.Printf("written to %s\n", *loadBench)
		return
	}

	if *searchBench != "" {
		res := experiments.RunSearchBench(*quick)
		writeJSONFile(*searchBench, res)
		fmt.Printf("search bench over %d docs (%d cores, %d workers):\n", res.Docs, res.Cores, res.Workers)
		fmt.Printf("  serial %.1f qps, parallel %.1f qps (%.2fx)\n", res.SerialQPS, res.ParallelQPS, res.Speedup)
		fmt.Printf("  page-1 cold %.0fµs, warm %.0fµs (%.0fx)\n", res.ColdPage1Us, res.WarmPage1Us, res.CacheGain)
		for _, sh := range res.ColdByShape {
			fmt.Printf("  cold %-11s p50 %.0fµs  p95 %.0fµs  (%d queries, %d samples)\n",
				sh.Shape, sh.P50Us, sh.P95Us, sh.Queries, sh.Samples)
		}
		fmt.Printf("  topk %.0fµs vs fullsort %.0fµs (%.1fx), pages identical: %v\n",
			res.TopK.TopKColdUs, res.TopK.FullSortColdUs, res.TopK.Speedup, res.TopK.PagesIdentical)
		fmt.Printf("  index_path=%d fallback_path=%d pruned_docs=%d\n",
			res.TopK.IndexPathQueries, res.TopK.FallbackPathQueries, res.TopK.PrunedDocs)
		if res.TopK.IndexPathQueries == 0 {
			log.Fatal("search bench: index-native path served 0 queries (dispatch gate broken?)")
		}
		if !res.TopK.PagesIdentical {
			log.Fatal("search bench: topk and fullsort pages diverged (parity violated)")
		}
		// On a multi-core host the parallel mode must not lose to serial:
		// the fan-out floor guarantees small inputs collapse to the serial
		// path, so a >10% deficit means the parallel path itself regressed.
		// Single-core hosts are exempt — both modes run the same serial
		// code there and the gap is pure measurement noise.
		if res.Cores > 1 && res.ParallelQPS < 0.9*res.SerialQPS {
			log.Fatalf("search bench: parallel %.1f qps is >10%% below serial %.1f qps on a %d-core host",
				res.ParallelQPS, res.SerialQPS, res.Cores)
		}
		sc := res.Scale
		fmt.Printf("  scale %d docs: built in %.0fms, heap +%.0fMB, postings %.1fMB across %d segments (%d seals, %d merges)\n",
			sc.Docs, sc.BuildMs, sc.HeapAllocMB, sc.PostingMB, sc.Segments, sc.Seals, sc.Merges)
		fmt.Printf("  scale cold p95 %.0fµs; live writer +%d docs: p95 %.0fµs, warm hits %d, term stalings %d\n",
			sc.ColdP95Us, sc.LiveWriterDocs, sc.LiveP95Us, sc.LiveWarmHits, sc.LiveStaleTerm)
		if sc.Segments == 0 {
			log.Fatal("search bench: scale ingest produced no sealed segments (seal path broken?)")
		}
		if sc.LiveWarmHits == 0 {
			log.Fatal("search bench: cache never warm under the live writer (term-scoped invalidation broken?)")
		}
		// Generous ceilings — these catch order-of-magnitude regressions
		// (accidental full-scan, unbounded heap), not CI-runner jitter.
		coldBudget, heapBudget := 5_000_000.0, 2048.0 // full mode: 100K docs
		if *quick {
			coldBudget, heapBudget = 1_000_000.0, 512.0
		}
		if sc.ColdP95Us > coldBudget {
			log.Fatalf("search bench: scale cold p95 %.0fµs exceeds %.0fµs budget", sc.ColdP95Us, coldBudget)
		}
		if sc.HeapAllocMB > heapBudget {
			log.Fatalf("search bench: scale heap %.0fMB exceeds %.0fMB budget", sc.HeapAllocMB, heapBudget)
		}
		fmt.Printf("written to %s\n", *searchBench)
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := experiments.Registry[id]; !ok {
				log.Fatalf("unknown experiment %q (have %v)", id, experiments.IDs())
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep := experiments.Registry[id](*quick)
		fmt.Println(rep.Format())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}

// writeJSONFile delegates to the experiments package's shared
// serializer, fatally on any error — benchmark output is the whole
// point of the run.
func writeJSONFile(path string, v any) {
	if err := experiments.WriteBenchJSON(path, v); err != nil {
		log.Fatal(err)
	}
}

// quotaStr renders a quota for the console summary ("∞" when unset).
func quotaStr(q int64) string {
	if q <= 0 {
		return "∞"
	}
	return fmt.Sprintf("%d", q)
}
