// Command benchrunner regenerates the paper's evaluation artifacts: one
// experiment per table/figure-level claim (see DESIGN.md §4), printing
// paper-claim vs measured tables.
//
// Usage:
//
//	benchrunner               # run everything at full size
//	benchrunner -quick        # reduced sizes (~seconds per experiment)
//	benchrunner -exp e1,e3    # selected experiments
//	benchrunner -searchbench BENCH_search.json
//	                          # search throughput/cache benchmark only,
//	                          # JSON result written to the given file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"covidkg/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e10) or 'all'")
	searchBench := flag.String("searchbench", "", "run the search concurrency/cache benchmark and write JSON to this file")
	flag.Parse()

	if *searchBench != "" {
		res := experiments.RunSearchBench(*quick)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*searchBench, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search bench over %d docs (%d cores, %d workers):\n", res.Docs, res.Cores, res.Workers)
		fmt.Printf("  serial %.1f qps, parallel %.1f qps (%.2fx)\n", res.SerialQPS, res.ParallelQPS, res.Speedup)
		fmt.Printf("  page-1 cold %.0fµs, warm %.0fµs (%.0fx)\n", res.ColdPage1Us, res.WarmPage1Us, res.CacheGain)
		fmt.Printf("written to %s\n", *searchBench)
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := experiments.Registry[id]; !ok {
				log.Fatalf("unknown experiment %q (have %v)", id, experiments.IDs())
			}
			ids = append(ids, id)
		}
	}

	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep := experiments.Registry[id](*quick)
		fmt.Println(rep.Format())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %s\n", time.Since(start).Round(time.Millisecond))
}
