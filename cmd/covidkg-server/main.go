// Command covidkg-server runs the COVIDKG HTTP service: it generates (or
// loads) a corpus, trains the models, builds the knowledge graph, and
// serves the interactive browser plus the JSON API.
//
// Usage:
//
//	covidkg-server [-addr :8080] [-pubs 300] [-seed 42] [-data DIR]
//
// With -data, the newest complete checkpoint in DIR is restored when
// present and a fresh one is committed after ingestion otherwise, so
// restarts are warm. On SIGINT/SIGTERM the server drains in-flight
// requests and checkpoints the store + knowledge graph before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"covidkg/internal/api"
	"covidkg/internal/breaker"
	"covidkg/internal/cord19"
	"covidkg/internal/core"
	"covidkg/internal/pprofserve"
	"covidkg/internal/retry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pubs := flag.Int("pubs", 300, "synthetic publications to generate when no data dir is loaded")
	seed := flag.Int64("seed", 42, "corpus generator seed")
	dataDir := flag.String("data", "", "optional directory for store persistence")
	shards := flag.Int("shards", 4, "document store shards")
	replicas := flag.Int("replicas", 3, "replicas per shard (quorum = replicas/2+1)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated covidkg-shard addresses; non-empty serves publications from those remote processes via the shardnet coordinator instead of in-process shards")
	hedgeDelay := flag.Duration("hedge-delay", 0, "latency budget before a shard read is hedged onto another replica (0 = adaptive 2×p95)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "circuit-breaker open→half-open cooldown (0 = default 1s)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive replica failures before the breaker opens (0 = default 3)")
	resyncInterval := flag.Duration("resync-interval", 30*time.Second, "background replica resync period (0 = disabled)")
	searchTimeout := flag.Duration("search-timeout", 0, "per-request deadline for search routes (0 = default 5s, negative = none)")
	aggTimeout := flag.Duration("aggregate-timeout", 0, "per-request deadline for aggregate/export routes (0 = default 10s, negative = none)")
	inflightSearch := flag.Int("inflight-search", 0, "max concurrent search requests before shedding (0 = default 64, negative = unbounded)")
	inflightHeavy := flag.Int("inflight-heavy", 0, "max concurrent aggregate/ingest/export requests before shedding (0 = default 8, negative = unbounded)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if _, err := pprofserve.Start(*pprofAddr, log.Printf); err != nil {
		log.Fatalf("pprof listener: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.Shards = *shards
	cfg.Replicas = *replicas
	cfg.Seed = *seed
	cfg.HedgeDelay = *hedgeDelay
	cfg.Breaker = breaker.Config{Threshold: *breakerFailures, Cooldown: *breakerCooldown}
	if *shardAddrs != "" {
		cfg.ShardAddrs = splitAddrs(*shardAddrs)
	}
	sys := core.NewSystem(cfg)
	if sys.Remote() {
		// Fail fast on a dead tier rather than booting into a server that
		// rejects every ingest; individual shards may still crash later —
		// breakers and /readyz take over from here.
		pingCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := sys.Coord.Ping(pingCtx)
		cancel()
		if err != nil {
			log.Fatalf("shard tier not reachable: %v", err)
		}
		log.Printf("publications served by %d remote shard processes (map v%d)",
			sys.Coord.NumShards(), sys.Coord.MapVersion())
	}
	if *resyncInterval > 0 {
		stopResync := sys.Store.StartAutoResync(*resyncInterval)
		defer stopResync()
	}

	loaded := false
	if *dataDir != "" {
		report, err := sys.Restore(*dataDir)
		switch {
		case err == nil && sys.Pubs.Count() > 0:
			// Restore re-indexed the search engine and restored the
			// persisted graph, so the system is immediately servable
			log.Printf("store restored from %s: %s", *dataDir, report)
			loaded = true
		case err == nil:
			log.Printf("data dir %s holds no publications; generating", *dataDir)
		case errors.Is(err, os.ErrNotExist):
			log.Printf("data dir %s not found; generating", *dataDir)
		default:
			log.Fatalf("restore: %v", err)
		}
	}
	if !loaded {
		log.Printf("generating %d publications (seed %d)", *pubs, *seed)
		g := cord19.NewGenerator(*seed)
		corpus := g.Corpus(*pubs)
		corpus = append(corpus, sideEffectPapers(g)...)
		if err := sys.IngestPublications(corpus); err != nil {
			log.Fatalf("ingest: %v", err)
		}
		if *dataDir != "" {
			// plain store save: checkpointing here would persist the
			// still-seed-only graph and make the restore branch below
			// skip building the real one
			if err := saveStore(sys, *dataDir); err != nil {
				log.Fatalf("save: %v", err)
			}
			log.Printf("store saved to %s", *dataDir)
		}
	}

	log.Printf("training models")
	stats, err := sys.TrainModels()
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	log.Printf("trained: vocab=%d termW2V=%d cellW2V=%d textW2V=%d svm=%s",
		stats.VocabSize, stats.TermVocab, stats.CellVocab, stats.TextVocab,
		stats.SVMMetrics)

	if restored, err := sys.RestoreGraph(); err != nil {
		log.Fatalf("restore graph: %v", err)
	} else if restored {
		log.Printf("knowledge graph restored from store: %d nodes", sys.Graph.Size())
	} else {
		log.Printf("building knowledge graph")
		bs := sys.BuildKG()
		log.Printf("kg built: tables=%d subtrees=%d fused=%d queued=%d nodes+%d",
			bs.Tables, bs.Subtrees, bs.Fused, bs.Queued, bs.NodesAdded)
		if *dataDir != "" {
			if err := checkpoint(sys, *dataDir); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
			log.Printf("store + graph checkpointed to %s", *dataDir)
		}
	}

	apiCfg := api.Config{
		SearchTimeout:     *searchTimeout,
		AggregateTimeout:  *aggTimeout,
		MaxInflightSearch: *inflightSearch,
		MaxInflightHeavy:  *inflightHeavy,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServerWith(sys, apiCfg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("covidkg listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("received %s: draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if *dataDir != "" {
			if err := checkpoint(sys, *dataDir); err != nil {
				log.Printf("final checkpoint failed: %v", err)
				os.Exit(1)
			}
			log.Printf("final checkpoint committed to %s", *dataDir)
		}
	}
}

// checkpoint commits the full system state, retrying transient I/O
// errors with capped exponential backoff.
func checkpoint(sys *core.System, dir string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return retry.Do(ctx, retry.DefaultConfig(), func() error {
		return sys.Checkpoint(dir)
	})
}

// saveStore persists only the collections (no graph), with the same
// retry discipline.
func saveStore(sys *core.System, dir string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return retry.Do(ctx, retry.DefaultConfig(), func() error {
		return sys.Store.Save(dir)
	})
}

// splitAddrs parses the -shard-addrs list, dropping empty segments so
// trailing commas don't become phantom shards.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func sideEffectPapers(g *cord19.Generator) []*cord19.Publication {
	vaccines := []string{"Pfizer-BioNTech", "Moderna", "AstraZeneca"}
	out := make([]*cord19.Publication, 3)
	for i := range out {
		out[i] = g.SideEffectPaper(vaccines)
	}
	return out
}
