// Command covidkg-server runs the COVIDKG HTTP service: it generates (or
// loads) a corpus, trains the models, builds the knowledge graph, and
// serves the interactive browser plus the JSON API.
//
// Usage:
//
//	covidkg-server [-addr :8080] [-pubs 300] [-seed 42] [-data DIR]
//
// With -data, the store is loaded from DIR when present and saved there
// after ingestion otherwise, so restarts are warm.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"covidkg/internal/api"
	"covidkg/internal/cord19"
	"covidkg/internal/core"
	"covidkg/internal/jsondoc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pubs := flag.Int("pubs", 300, "synthetic publications to generate when no data dir is loaded")
	seed := flag.Int64("seed", 42, "corpus generator seed")
	dataDir := flag.String("data", "", "optional directory for store persistence")
	shards := flag.Int("shards", 4, "document store shards")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Shards = *shards
	cfg.Seed = *seed
	sys := core.NewSystem(cfg)

	loaded := false
	if *dataDir != "" {
		if _, err := os.Stat(filepath.Join(*dataDir, core.PubsCollection+".jsonl")); err == nil {
			log.Printf("loading store from %s", *dataDir)
			if err := sys.Store.Load(*dataDir); err != nil {
				log.Fatalf("load: %v", err)
			}
			// re-index loaded documents
			sys.Search = nil // the engine below re-scans
			sys = rebuildSystem(cfg, sys)
			loaded = true
		}
	}
	if !loaded {
		log.Printf("generating %d publications (seed %d)", *pubs, *seed)
		g := cord19.NewGenerator(*seed)
		corpus := g.Corpus(*pubs)
		corpus = append(corpus, sideEffectPapers(g)...)
		if err := sys.IngestPublications(corpus); err != nil {
			log.Fatalf("ingest: %v", err)
		}
		if *dataDir != "" {
			if err := sys.Store.Save(*dataDir); err != nil {
				log.Fatalf("save: %v", err)
			}
			log.Printf("store saved to %s", *dataDir)
		}
	}

	log.Printf("training models")
	stats, err := sys.TrainModels()
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	log.Printf("trained: vocab=%d termW2V=%d cellW2V=%d textW2V=%d svm=%s",
		stats.VocabSize, stats.TermVocab, stats.CellVocab, stats.TextVocab,
		stats.SVMMetrics)

	if restored, err := sys.RestoreGraph(); err != nil {
		log.Fatalf("restore graph: %v", err)
	} else if restored {
		log.Printf("knowledge graph restored from store: %d nodes", sys.Graph.Size())
	} else {
		log.Printf("building knowledge graph")
		bs := sys.BuildKG()
		log.Printf("kg built: tables=%d subtrees=%d fused=%d queued=%d nodes+%d",
			bs.Tables, bs.Subtrees, bs.Fused, bs.Queued, bs.NodesAdded)
		if *dataDir != "" {
			if err := sys.PersistGraph(); err != nil {
				log.Fatalf("persist graph: %v", err)
			}
			if err := sys.Store.Save(*dataDir); err != nil {
				log.Fatalf("save: %v", err)
			}
			log.Printf("store + graph saved to %s", *dataDir)
		}
	}

	srv := api.NewServer(sys)
	log.Printf("covidkg listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// rebuildSystem recreates the system over an already-populated store so
// the search engine re-indexes loaded documents. Non-publication
// collections (the persisted knowledge graph) carry over verbatim.
func rebuildSystem(cfg core.Config, old *core.System) *core.System {
	fresh := core.NewSystem(cfg)
	count := 0
	old.Pubs.Scan(func(d jsondoc.Doc) bool {
		if _, err := fresh.Search.AddDocument(d); err != nil {
			log.Printf("reindex: %v", err)
		}
		count++
		return true
	})
	for _, name := range old.Store.CollectionNames() {
		if name == core.PubsCollection {
			continue
		}
		dst := fresh.Store.Collection(name)
		old.Store.Collection(name).Scan(func(d jsondoc.Doc) bool {
			if _, err := dst.Insert(d); err != nil {
				log.Printf("copy %s: %v", name, err)
			}
			return true
		})
	}
	fmt.Printf("reindexed %d publications\n", count)
	return fresh
}

func sideEffectPapers(g *cord19.Generator) []*cord19.Publication {
	vaccines := []string{"Pfizer-BioNTech", "Moderna", "AstraZeneca"}
	out := make([]*cord19.Publication, 3)
	for i := range out {
		out[i] = g.SideEffectPaper(vaccines)
	}
	return out
}
