// Command kgctl is the COVIDKG command-line tool: generate corpora,
// ingest them, train models, build the knowledge graph, and query the
// system — the whole Figure 1 pipeline from a terminal.
//
// Subcommands:
//
//	kgctl gen       -n 500 -seed 42 -out DIR     generate a corpus into a store dir
//	kgctl search    -data DIR -engine all -q "masks" [-page 1]
//	kgctl kg        -data DIR [-q vaccines] [-graph FILE]  build/load and query the KG
//	kgctl profile   -data DIR                    build the side-effect meta-profile
//	kgctl topics    -data DIR -k 8               topical clustering
//	kgctl stats     -data DIR                    store statistics
//	kgctl bias      -data DIR                    interrogate the corpus for bias
//	kgctl aggregate -data DIR -q '[{"$group": ...}]'  run a JSON pipeline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"covidkg/internal/cord19"
	"covidkg/internal/core"
	"covidkg/internal/docstore"
	"covidkg/internal/durable"
	"covidkg/internal/faultfs"
	"covidkg/internal/jsondoc"
	"covidkg/internal/kg"
	"covidkg/internal/pipeline"
	"covidkg/internal/search"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	case "kg":
		cmdKG(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "topics":
		cmdTopics(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "bias":
		cmdBias(os.Args[2:])
	case "aggregate":
		cmdAggregate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kgctl <gen|search|kg|profile|topics|stats|bias|aggregate> [flags]")
	os.Exit(2)
}

// cmdAggregate runs a MongoDB-dialect JSON pipeline over a collection:
//
//	kgctl aggregate -data DIR -q '[{"$group": {"_id": "$topic", "n": {"$sum": 1}}}]'
func cmdAggregate(args []string) {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	collName := fs.String("collection", core.PubsCollection, "collection to query")
	q := fs.String("q", "", "JSON pipeline (array of $-stages)")
	limit := fs.Int("limit", 20, "max results printed")
	fs.Parse(args)
	if *q == "" {
		log.Fatal("aggregate: -q is required")
	}
	var stages []any
	if err := json.Unmarshal([]byte(*q), &stages); err != nil {
		log.Fatalf("aggregate: parse pipeline: %v", err)
	}
	p, err := pipeline.Compile(stages)
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	p.Append(pipeline.Limit(*limit))

	sys := core.NewSystem(core.DefaultConfig())
	if err := sys.Store.Load(*data); err != nil {
		log.Fatalf("load: %v", err)
	}
	coll := sys.Store.Collection(*collName)
	out, err := p.Run(collSource{coll})
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	for _, d := range out {
		fmt.Println(d.String())
	}
	fmt.Fprintf(os.Stderr, "(%d results)\n", len(out))
}

// collSource adapts a docstore collection to pipeline.Source.
type collSource struct{ c *docstore.Collection }

func (s collSource) Scan(fn func(jsondoc.Doc) bool) { s.c.Scan(fn) }

func cmdBias(args []string) {
	fs := flag.NewFlagSet("bias", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	fs.Parse(args)
	sys := loadSystem(*data, false)
	fmt.Print(sys.AuditBias().Format())
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 500, "publications to generate")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", "covidkg-data", "output store directory")
	withSE := fs.Bool("side-effects", true, "include Figure 6 side-effect papers")
	fs.Parse(args)

	sys := core.NewSystem(core.DefaultConfig())
	g := cord19.NewGenerator(*seed)
	pubs := g.Corpus(*n)
	if *withSE {
		vaccines := []string{"Pfizer-BioNTech", "Moderna", "AstraZeneca"}
		for i := 0; i < 3; i++ {
			pubs = append(pubs, g.SideEffectPaper(vaccines))
		}
	}
	if err := sys.IngestPublications(pubs); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	if err := sys.Store.Save(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %d publications to %s", sys.Pubs.Count(), *out)
}

// loadSystem loads a store dir and retrains models.
func loadSystem(dataDir string, train bool) *core.System {
	cfg := core.DefaultConfig()
	sys := core.NewSystem(cfg)
	if err := sys.Store.Load(dataDir); err != nil {
		log.Fatalf("load %s: %v (run `kgctl gen` first)", dataDir, err)
	}
	// reindex into a fresh engine
	fresh := core.NewSystem(cfg)
	sys.Store.Collection(core.PubsCollection).Scan(func(d jsondoc.Doc) bool {
		if _, err := fresh.Search.AddDocument(d); err != nil {
			log.Printf("reindex: %v", err)
		}
		return true
	})
	if train {
		if _, err := fresh.TrainModels(); err != nil {
			log.Fatalf("train: %v", err)
		}
	}
	return fresh
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	engine := fs.String("engine", "all", "all|tables|fields")
	q := fs.String("q", "", "query (quote phrases for exact match)")
	title := fs.String("title", "", "title query (fields engine)")
	abstract := fs.String("abstract", "", "abstract query (fields engine)")
	caption := fs.String("caption", "", "caption query (fields engine)")
	page := fs.Int("page", 1, "result page (10 per page)")
	fs.Parse(args)

	sys := loadSystem(*data, false)
	var (
		pg  search.Page
		err error
	)
	switch *engine {
	case "all":
		pg, err = sys.Search.SearchAll(*q, *page)
	case "tables":
		pg, err = sys.Search.SearchTables(*q, *page)
	case "fields":
		pg, err = sys.Search.SearchFields(search.FieldQuery{
			Title: *title, Abstract: *abstract, Caption: *caption,
		}, *page)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("%d results (page %d/%d)\n\n", pg.Total, pg.PageNum, pg.NumPages)
	for i, r := range pg.Results {
		fmt.Printf("%2d. [%.3f] %s\n    %s — %s\n",
			(pg.PageNum-1)*pg.PerPage+i+1, r.Score, r.Title,
			strings.Join(r.Authors, ", "), r.Journal)
		for _, sn := range r.Snippets {
			fmt.Printf("      %-14s %s\n", sn.Field+":", sn.HighlightMarked())
		}
		fmt.Println()
	}
}

func cmdKG(args []string) {
	fs := flag.NewFlagSet("kg", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	q := fs.String("q", "", "optional KG query")
	dump := fs.Bool("tree", false, "print the full tree")
	graphFile := fs.String("graph", "", "optional file: load the graph from it when present, save after building otherwise")
	fs.Parse(args)

	var sys *core.System
	if *graphFile != "" {
		// checksummed envelope; pre-durability raw dumps load too
		blob, err := durable.ReadChecksummed(faultfs.OS{}, *graphFile)
		switch {
		case err == nil:
			g, err := kg.FromJSON(blob)
			if err != nil {
				log.Fatalf("graph file: %v", err)
			}
			sys = loadSystem(*data, false)
			sys.Graph = g
			sys.Fuser = kg.NewFuser(g)
			fmt.Printf("knowledge graph loaded from %s: %d nodes\n\n", *graphFile, g.Size())
			queryAndDump(sys, *q, *dump)
			return
		case !os.IsNotExist(err):
			// an existing-but-unreadable dump deserves a warning before
			// it gets rebuilt and overwritten below
			log.Printf("warning: graph file %s unusable, rebuilding: %v", *graphFile, err)
		}
	}
	sys = loadSystem(*data, true)
	st := sys.BuildKG()
	fmt.Printf("knowledge graph: %d nodes (tables=%d subtrees=%d fused=%d queued=%d)\n\n",
		sys.Graph.Size(), st.Tables, st.Subtrees, st.Fused, st.Queued)
	if *graphFile != "" {
		blob, err := sys.Graph.MarshalJSON()
		if err != nil {
			log.Fatalf("serialize graph: %v", err)
		}
		if err := durable.WriteChecksummed(faultfs.OS{}, *graphFile, blob); err != nil {
			log.Fatalf("save graph: %v", err)
		}
		fmt.Printf("graph saved to %s\n", *graphFile)
	}
	queryAndDump(sys, *q, *dump)
}

func queryAndDump(sys *core.System, q string, dump bool) {
	if q != "" {
		hits := sys.Graph.Search(q)
		fmt.Printf("%d hits for %q\n", len(hits), q)
		for _, h := range hits {
			var labels []string
			for _, p := range h.Path {
				labels = append(labels, p.Label)
			}
			fmt.Printf("  %s  (%d papers)\n", strings.Join(labels, " → "), len(h.Node.Papers))
		}
	}
	if dump {
		sys.Graph.Walk(func(n kg.Node, depth int) bool {
			fmt.Printf("%s%s", strings.Repeat("  ", depth), n.Label)
			if len(n.Papers) > 0 {
				fmt.Printf("  [%d papers]", len(n.Papers))
			}
			fmt.Println()
			return true
		})
	}
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	fs.Parse(args)
	sys := loadSystem(*data, true)
	p := sys.BuildMetaProfile("COVID-19 Vaccine Side-effects")
	fmt.Print(p.Render())
}

func cmdTopics(args []string) {
	fs := flag.NewFlagSet("topics", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	k := fs.Int("k", len(cord19.TopicNames()), "number of clusters")
	fs.Parse(args)
	sys := loadSystem(*data, true)
	res, ids, truths, err := sys.TopicClusters(*k)
	if err != nil {
		log.Fatalf("topics: %v", err)
	}
	counts := make(map[int]map[string]int)
	for i, c := range res.Assign {
		if counts[c] == nil {
			counts[c] = map[string]int{}
		}
		counts[c][truths[i]]++
	}
	fmt.Printf("clustered %d publications into %d topics (%d iterations)\n",
		len(ids), *k, res.Iterations)
	for c := 0; c < *k; c++ {
		fmt.Printf("  cluster %d:", c)
		for topic, n := range counts[c] {
			fmt.Printf(" %s=%d", topic, n)
		}
		fmt.Println()
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	data := fs.String("data", "covidkg-data", "store directory")
	fs.Parse(args)
	cfg := core.DefaultConfig()
	sys := core.NewSystem(cfg)
	if err := sys.Store.Load(*data); err != nil {
		log.Fatalf("load: %v", err)
	}
	st := sys.Store.Stats()
	fmt.Printf("collections: %d\ndocuments:   %d\nbytes:       %d\n", st.Collections, st.Documents, st.Bytes)
	for i, n := range st.PerShard {
		fmt.Printf("shard %d:     %d docs\n", i, n)
	}
}
