// Command covidkg-shard runs one shard of the networked document tier:
// a single-shard replicated store behind the length-prefixed shardnet
// protocol, with a crash-safe write-ahead log. A covidkg-server started
// with -shard-addrs scatter-gathers over N of these.
//
// Usage:
//
//	covidkg-shard -addr 127.0.0.1:9301 -name shard0 -wal shard0.wal
//
// With -wal, every acknowledged write is fsynced to the log before the
// ack, so a SIGKILL loses nothing: on restart the log replays and the
// shard resumes serving the same data on the same address. Without
// -wal the shard is memory-only (useful for throwaway experiments).
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"covidkg/internal/pprofserve"
	"covidkg/internal/shardnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9301", "listen address (port 0 picks an ephemeral port)")
	name := flag.String("name", "shard0", "logical shard name (stable across restarts and migrations)")
	replicas := flag.Int("replicas", 3, "replicas inside this shard's group (quorum = replicas/2+1)")
	wal := flag.String("wal", "", "write-ahead log path; empty disables crash durability")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if _, err := pprofserve.Start(*pprofAddr, log.Printf); err != nil {
		log.Fatalf("covidkg-shard %s: pprof listener: %v", *name, err)
	}

	srv, err := shardnet.NewServer(shardnet.ServerConfig{
		Name:     *name,
		Replicas: *replicas,
		WALPath:  *wal,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("covidkg-shard %s: %v", *name, err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("covidkg-shard %s: listen: %v", *name, err)
	}
	log.Printf("covidkg-shard %s serving on %s (replicas=%d wal=%q)",
		*name, ln.Addr(), *replicas, *wal)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			log.Fatalf("covidkg-shard %s: serve: %v", *name, err)
		}
	case sig := <-sigCh:
		log.Printf("covidkg-shard %s: received %s, shutting down", *name, sig)
		srv.Close()
	}
}
