// Benchmarks: one per table/figure-level claim in the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark
// times the core operation of its experiment; cmd/benchrunner prints
// the full paper-claim vs measured reports.
package covidkg_test

import (
	"fmt"
	"math/rand"
	"regexp"
	"testing"

	"covidkg/internal/classifier"
	"covidkg/internal/cluster"
	"covidkg/internal/cord19"
	"covidkg/internal/docstore"
	"covidkg/internal/embeddings"
	"covidkg/internal/features"
	"covidkg/internal/jsondoc"
	"covidkg/internal/kg"
	"covidkg/internal/metaprofile"
	"covidkg/internal/mlcluster"
	"covidkg/internal/mlcore"
	"covidkg/internal/pipeline"
	"covidkg/internal/search"
	"covidkg/internal/svm"
	"covidkg/internal/tableparse"
)

// ---------------------------------------------------------------- E1/E2

type benchData struct {
	svmSamples []classifier.SVMSample
	tuples     []classifier.TupleSample
	vocab      *features.Vocabulary
	termW2V    *embeddings.Word2Vec
	cellW2V    *embeddings.Word2Vec
}

func newBenchData(nTables int) *benchData {
	g := cord19.NewGenerator(1)
	d := &benchData{}
	var grids [][][]string
	var texts []string
	for _, lt := range g.LabeledTables(nTables, 0.5) {
		grids = append(grids, lt.Rows)
		d.svmSamples = append(d.svmSamples, classifier.SVMSamplesFromTable(lt.Rows, lt.Meta)...)
		d.tuples = append(d.tuples, classifier.SamplesFromTable(lt.Rows, lt.Meta)...)
		for _, row := range lt.Rows {
			texts = append(texts, row...)
		}
	}
	d.vocab = features.BuildVocabulary(texts, 2000)
	cfg := embeddings.DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 3
	cfg.MinCount = 1
	termSents, cellSents := embeddings.TableSentences(grids)
	d.termW2V = embeddings.Train(termSents, cfg)
	d.cellW2V = embeddings.Train(cellSents, cfg)
	return d
}

// BenchmarkE1_MetadataClassification times one train+evaluate cycle of
// the §3.3 experiment for both model families.
func BenchmarkE1_MetadataClassification(b *testing.B) {
	d := newBenchData(40)
	split := len(d.svmSamples) * 4 / 5

	b.Run("SVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := classifier.NewSVMModel(d.vocab, svm.DefaultConfig())
			if err := m.Train(d.svmSamples[:split]); err != nil {
				b.Fatal(err)
			}
			m.Evaluate(d.svmSamples[split:])
		}
	})
	b.Run("BiGRU", func(b *testing.B) {
		cfg := classifier.DefaultEnsembleConfig()
		cfg.Units = 8
		cfg.Epochs = 2
		tsplit := len(d.tuples) * 4 / 5
		for i := 0; i < b.N; i++ {
			m, err := classifier.NewEnsemble(d.termW2V, d.cellW2V, cfg)
			if err != nil {
				b.Fatal(err)
			}
			m.Train(d.tuples[:tsplit])
			m.Evaluate(d.tuples[tsplit:])
		}
	})
}

// BenchmarkE2_BiGRUvsBiLSTM times the §3.6 ablation's training cost for
// each cell — the paper's reason for choosing biGRU.
func BenchmarkE2_BiGRUvsBiLSTM(b *testing.B) {
	d := newBenchData(30)
	for _, cell := range []string{"gru", "lstm"} {
		b.Run(cell, func(b *testing.B) {
			cfg := classifier.DefaultEnsembleConfig()
			cfg.Cell = cell
			cfg.Units = 12
			cfg.Epochs = 2
			for i := 0; i < b.N; i++ {
				m, err := classifier.NewEnsemble(d.termW2V, d.cellW2V, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.Train(d.tuples)
			}
		})
	}
}

// ------------------------------------------------------------------- E3

type benchSource struct{ c *docstore.Collection }

func (s benchSource) Scan(fn func(jsondoc.Doc) bool) { s.c.Scan(fn) }

// BenchmarkE3_PipelineOrder times the §2.1 $match-first optimization.
func BenchmarkE3_PipelineOrder(b *testing.B) {
	store := docstore.Open(docstore.WithShards(4))
	coll := store.Collection("pubs")
	g := cord19.NewGenerator(3)
	for _, p := range g.Corpus(2000) {
		if _, err := coll.Insert(p.Doc()); err != nil {
			b.Fatal(err)
		}
	}
	re := regexp.MustCompile(`(?i)\bmask`)
	heavy := func() pipeline.Stage {
		return pipeline.Function("rank", func(d jsondoc.Doc) (jsondoc.Doc, error) {
			text := d.GetString("abstract") + d.GetString("body_text")
			score := 0.0
			for i := 0; i < len(text); i++ {
				score += float64(text[i] & 0x1f)
			}
			return d, d.Set("score", score)
		})
	}
	b.Run("match_first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pipeline.New(pipeline.MatchRegex("title", re), heavy(),
				pipeline.SortByDesc("score"), pipeline.Limit(10))
			if _, err := p.Run(benchSource{coll}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("match_last", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pipeline.New(heavy(), pipeline.MatchRegex("title", re),
				pipeline.SortByDesc("score"), pipeline.Limit(10))
			if _, err := p.Run(benchSource{coll}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------------------------------- E4

// BenchmarkE4_SearchEngines times the three engines' query latency over
// a prebuilt corpus (Figures 2 & 4).
func BenchmarkE4_SearchEngines(b *testing.B) {
	store := docstore.Open(docstore.WithShards(4))
	coll := store.Collection("pubs")
	g := cord19.NewGenerator(4)
	for _, p := range g.Corpus(1500) {
		if _, err := coll.Insert(p.Doc()); err != nil {
			b.Fatal(err)
		}
	}
	eng := search.NewEngine(coll)
	b.Run("all_fields", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.SearchAll("masks", 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tables", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.SearchTables("ventilators", 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fields", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.SearchFields(search.FieldQuery{Title: "vaccination"}, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact_phrase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.SearchAll(`"viral load"`, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ------------------------------------------------------------------- E5

// BenchmarkE5_MetaProfiles times parsing + extraction + profile build
// for the Figure 6 scenario.
func BenchmarkE5_MetaProfiles(b *testing.B) {
	g := cord19.NewGenerator(5)
	vaccines := []string{"Pfizer-BioNTech", "Moderna", "AstraZeneca"}
	var htmls []string
	var ids []string
	for i := 0; i < 3; i++ {
		pub := g.SideEffectPaper(vaccines)
		for _, t := range pub.Tables {
			htmls = append(htmls, t.HTML)
			ids = append(ids, pub.ID)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var obs []metaprofile.Observation
		for j, html := range htmls {
			t, err := tableparse.ParseOne(html)
			if err != nil {
				b.Fatal(err)
			}
			obs = append(obs, metaprofile.ExtractObservations(t, ids[j], -1)...)
		}
		p := metaprofile.Build("side-effects", obs)
		if len(p.Groups()) == 0 {
			b.Fatal("empty profile")
		}
	}
}

// ------------------------------------------------------------------- E6

// BenchmarkE6_ShardScaling times corpus ingest at several shard counts
// (§2 Storage).
func BenchmarkE6_ShardScaling(b *testing.B) {
	g := cord19.NewGenerator(6)
	docs := make([]jsondoc.Doc, 800)
	for i, p := range g.Corpus(len(docs)) {
		docs[i] = p.Doc()
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := docstore.Open(docstore.WithShards(shards))
				coll := store.Collection("pubs")
				for _, d := range docs {
					nd := d.Clone()
					delete(nd, "_id")
					if _, err := coll.Insert(nd); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ------------------------------------------------------------------- E7

// BenchmarkE7_VocabSweep times SVM training as the §3.2 feature space
// grows.
func BenchmarkE7_VocabSweep(b *testing.B) {
	g := cord19.NewGenerator(7)
	var samples []classifier.SVMSample
	var texts []string
	for _, lt := range g.LabeledTables(30, 0.5) {
		samples = append(samples, classifier.SVMSamplesFromTable(lt.Rows, lt.Meta)...)
		for _, row := range lt.Rows {
			texts = append(texts, row...)
		}
	}
	for i := 0; len(texts) < 16000; i++ {
		texts = append(texts, fmt.Sprintf("synthterm%d", i))
	}
	for _, size := range []int{250, 1000, 4000} {
		vocab := features.BuildVocabulary(texts, size)
		b.Run(fmt.Sprintf("vocab-%d", vocab.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := classifier.NewSVMModel(vocab, svm.DefaultConfig())
				if err := m.Train(samples); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------------- E8

// BenchmarkE8_KGFusion times the §4.2 fusion battery (term matches,
// embedding fallbacks, queueing).
func BenchmarkE8_KGFusion(b *testing.B) {
	embed := func(label string) []float64 {
		h := uint32(2166136261)
		for i := 0; i < len(label); i++ {
			h = (h ^ uint32(label[i])) * 16777619
		}
		out := make([]float64, 16)
		for d := range out {
			h = h*1664525 + 1013904223
			out[d] = float64(h%1000)/1000 - 0.5
		}
		return out
	}
	for i := 0; i < b.N; i++ {
		g := kg.SeedCOVID(embed)
		f := kg.NewFuser(g)
		for j := 0; j < 20; j++ {
			f.Fuse(kg.NewSubtree("Vaccines", fmt.Sprintf("Vaccine-%d", j)))
			f.Fuse(kg.NewSubtree(fmt.Sprintf("Novel-%d", j), "Leaf"))
		}
	}
}

// ------------------------------------------------------------------- E9

// BenchmarkE9_TopicClustering times k-means over document embeddings
// (Figure 1 №5).
func BenchmarkE9_TopicClustering(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	points := make([][]float64, 600)
	for i := range points {
		c := i % 8
		points[i] = make([]float64, 32)
		for d := range points[i] {
			points[i][d] = float64(c) + rng.NormFloat64()*0.3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, cluster.DefaultConfig(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------------ E10

// BenchmarkE10_ClusterTraining times one data-parallel training round at
// several worker counts (§3 Hardware).
func BenchmarkE10_ClusterTraining(b *testing.B) {
	const n, dim = 2000, 30
	rng := rand.New(rand.NewSource(10))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, dim)
		for d := range x[i] {
			x[i][d] = rng.NormFloat64()
		}
		if x[i][0] > 0 {
			y[i] = 1
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			shards := mlcluster.ShardIndices(n, workers)
			replicas := make([][]*mlcore.Param, workers)
			models := make([]*mlcore.Dense, workers)
			sigs := make([]*mlcore.SigmoidLayer, workers)
			opts := make([]*mlcore.SGD, workers)
			for w := 0; w < workers; w++ {
				models[w] = mlcore.NewDense(dim, 1, rand.New(rand.NewSource(1)))
				sigs[w] = &mlcore.SigmoidLayer{}
				opts[w] = mlcore.NewSGD(0.5, 0)
				replicas[w] = models[w].Params()
			}
			tr := &mlcluster.Trainer{Workers: workers, Rounds: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := tr.Run(replicas, func(w, _ int) {
					shard := shards[w]
					xb := mlcore.NewMatrix(len(shard), dim)
					yb := mlcore.NewMatrix(len(shard), 1)
					for bi, idx := range shard {
						copy(xb.Row(bi), x[idx])
						yb.Set(bi, 0, y[idx])
					}
					pred := sigs[w].Forward(models[w].Forward(xb, true), true)
					_, grad := mlcore.BCELoss(pred, yb)
					models[w].Backward(sigs[w].Backward(grad))
					opts[w].Step(models[w].Params())
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
